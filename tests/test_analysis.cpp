// Tests for the performance-attribution analyzer (obs/analysis.hpp): a
// hand-constructed trace whose critical path and phase attribution are
// known exactly, conservation invariants on a real multi-rank engine run
// (per-rank phase buckets sum to the rank's traced thread time, the comm
// matrix agrees with the global counters), the simulator path through the
// same analyzer, and the JSON rendering against tools/report_schema.json.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "engine/engine.hpp"
#include "json_util.hpp"
#include "obs/analysis.hpp"
#include "obs/metrics.hpp"
#include "sim/cluster_sim.hpp"
#include "support/json_schema.hpp"
#include "tiling/balance.hpp"

namespace dpgen {
namespace {

using obs::AnalysisInput;
using obs::AnalysisReport;
using obs::Phase;
using obs::Span;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

Span make_span(Phase phase, int rank, int thread, std::int64_t start_ns,
               std::int64_t end_ns, const IntVec& tile = {}) {
  Span s;
  s.phase = phase;
  s.rank = static_cast<std::int16_t>(rank);
  s.thread = static_cast<std::int16_t>(thread);
  s.start_ns = start_ns;
  s.end_ns = end_ns;
  s.ncoord = static_cast<std::uint8_t>(tile.size());
  for (std::size_t k = 0; k < tile.size(); ++k)
    s.coord[k] = static_cast<std::int32_t>(tile[k]);
  return s;
}

// A 2-rank, 4-tile chain with every nanosecond placed by hand:
//
//   rank 0, thread 0: exec {0} [0,100)  pack [100,130)  send [130,150)
//                     exec {1} [150,250)
//   rank 1, thread 0: idle [0,230)  unpack [230,260)  exec {2} [260,360)
//                     <untraced 20 ns>  exec {3} [380,480)
//
// With offsets {{-1}} (tile t depends on tile t-1) the critical path is
// {0} -> {1} -> {2} -> {3} and the attribution must be exactly:
// compute 400, pack 30, send 20, unpack 10, other 20 — summing to the
// 480 ns makespan.
AnalysisInput hand_built_input() {
  AnalysisInput in;
  in.spans = {
      make_span(Phase::kTileExecute, 0, 0, 0, 100, {0}),
      make_span(Phase::kPack, 0, 0, 100, 130),
      make_span(Phase::kSend, 0, 0, 130, 150),
      make_span(Phase::kTileExecute, 0, 0, 150, 250, {1}),
      make_span(Phase::kIdle, 1, 0, 0, 230),
      make_span(Phase::kUnpack, 1, 0, 230, 260),
      make_span(Phase::kTileExecute, 1, 0, 260, 360, {2}),
      make_span(Phase::kTileExecute, 1, 0, 380, 480, {3}),
  };
  in.nranks = 2;
  in.edge_offsets = {{-1}};
  in.predicted_work = {300.0, 100.0};
  in.bytes_matrix = {{0, 64}, {0, 0}};
  in.messages_matrix = {{0, 2}, {0, 0}};
  in.source = "trace";
  in.problem = "chain";
  in.params = {4};
  return in;
}

constexpr double kNs = 1e-9;
constexpr double kEps = 1e-12;  // well below one attributed nanosecond

TEST(Analysis, HandBuiltCriticalPathIsFoundExactly) {
  AnalysisReport r = obs::analyze(hand_built_input());

  EXPECT_TRUE(r.warnings.empty())
      << "unexpected warning: " << r.warnings.front();
  EXPECT_EQ(r.nranks, 2);
  EXPECT_NEAR(r.makespan_s, 480 * kNs, kEps);

  ASSERT_EQ(r.critical_path.size(), 4u);
  EXPECT_EQ(r.critical_path[0].tile, (IntVec{0}));
  EXPECT_EQ(r.critical_path[1].tile, (IntVec{1}));
  EXPECT_EQ(r.critical_path[2].tile, (IntVec{2}));
  EXPECT_EQ(r.critical_path[3].tile, (IntVec{3}));
  EXPECT_EQ(r.critical_path[0].rank, 0);
  EXPECT_EQ(r.critical_path[3].rank, 1);
  EXPECT_NEAR(r.critical_path[0].gap_before_s, 0.0, kEps);
  EXPECT_NEAR(r.critical_path[1].gap_before_s, 50 * kNs, kEps);
  EXPECT_NEAR(r.critical_path[2].gap_before_s, 10 * kNs, kEps);
  EXPECT_NEAR(r.critical_path[3].gap_before_s, 20 * kNs, kEps);

  EXPECT_NEAR(r.path_attribution.compute, 400 * kNs, kEps);
  EXPECT_NEAR(r.path_attribution.pack, 30 * kNs, kEps);
  EXPECT_NEAR(r.path_attribution.send, 20 * kNs, kEps);
  EXPECT_NEAR(r.path_attribution.unpack, 10 * kNs, kEps);
  EXPECT_NEAR(r.path_attribution.other, 20 * kNs, kEps);
  EXPECT_NEAR(r.path_attribution.idle, 0.0, kEps);
  // Conservation: the buckets sum to the makespan, coverage is 1.
  EXPECT_NEAR(r.path_attribution.total(), r.makespan_s, kEps);
  EXPECT_NEAR(r.path_coverage, 1.0, 1e-9);
}

TEST(Analysis, HandBuiltLoadBalanceAudit) {
  AnalysisReport r = obs::analyze(hand_built_input());
  ASSERT_EQ(r.ranks.size(), 2u);

  const obs::RankAudit& r0 = r.ranks[0];
  EXPECT_EQ(r0.tiles, 2);
  EXPECT_NEAR(r0.measured_compute_s, 200 * kNs, kEps);
  EXPECT_NEAR(r0.wall_s, 250 * kNs, kEps);
  EXPECT_NEAR(r0.thread_seconds, 250 * kNs, kEps);
  EXPECT_NEAR(r0.phases.compute, 200 * kNs, kEps);
  EXPECT_NEAR(r0.phases.pack, 30 * kNs, kEps);
  EXPECT_NEAR(r0.phases.send, 20 * kNs, kEps);
  EXPECT_NEAR(r0.phases.total(), r0.thread_seconds, kEps);

  const obs::RankAudit& r1 = r.ranks[1];
  EXPECT_EQ(r1.tiles, 2);
  EXPECT_NEAR(r1.phases.idle, 230 * kNs, kEps);
  EXPECT_NEAR(r1.phases.unpack, 30 * kNs, kEps);
  EXPECT_NEAR(r1.phases.other, 20 * kNs, kEps);  // the untraced stretch
  EXPECT_NEAR(r1.phases.total(), r1.thread_seconds, kEps);

  // Ehrhart audit: predicted 300/100 vs measured 200/200 ns of compute.
  EXPECT_NEAR(r0.predicted_share, 0.75, kEps);
  EXPECT_NEAR(r0.measured_share, 0.5, kEps);
  EXPECT_NEAR(r0.share_error, -0.25, kEps);
  EXPECT_NEAR(r1.share_error, 0.25, kEps);
  EXPECT_NEAR(r.predicted_imbalance, 1.5, kEps);
  EXPECT_NEAR(r.measured_imbalance, 1.0, kEps);

  // Comm matrix passes through with totals.
  EXPECT_EQ(r.total_bytes, 64u);
  EXPECT_EQ(r.total_messages, 2u);
}

TEST(Analysis, NestedSpansAttributeToTheMostSpecificPhase) {
  // A poll loop nested inside an idle stretch must count as idle, not
  // double-count: the window is 100 ns and stays 100 ns.
  AnalysisInput in;
  in.spans = {
      make_span(Phase::kIdle, 0, 0, 0, 100),
      make_span(Phase::kPoll, 0, 0, 20, 40),
      make_span(Phase::kPoll, 0, 0, 60, 80),
      make_span(Phase::kTileExecute, 0, 0, 100, 200, {0}),
  };
  in.nranks = 1;
  AnalysisReport r = obs::analyze(in);
  ASSERT_EQ(r.ranks.size(), 1u);
  EXPECT_NEAR(r.ranks[0].phases.idle, 100 * kNs, kEps);
  EXPECT_NEAR(r.ranks[0].phases.poll, 0.0, kEps);
  EXPECT_NEAR(r.ranks[0].phases.total(), 200 * kNs, kEps);
}

TEST(Analysis, DroppedSpansProduceAWarning) {
  AnalysisInput in = hand_built_input();
  in.spans_dropped = 3;
  AnalysisReport r = obs::analyze(in);
  EXPECT_EQ(r.spans_dropped, 3u);
  ASSERT_FALSE(r.warnings.empty());
  EXPECT_NE(r.warnings.front().find("dropped"), std::string::npos);
  // The warning also reaches both renderings.
  EXPECT_NE(obs::report_text(r).find("WARNING"), std::string::npos);
  EXPECT_NE(obs::report_json(r).find("\"spans_dropped\":3"),
            std::string::npos);
}

TEST(Analysis, MissingInputsDegradeWithWarnings) {
  AnalysisInput in = hand_built_input();
  in.edge_offsets.clear();
  in.predicted_work.clear();
  AnalysisReport r = obs::analyze(in);
  // Without offsets the path degenerates to the last-finishing tile.
  ASSERT_EQ(r.critical_path.size(), 1u);
  EXPECT_EQ(r.critical_path[0].tile, (IntVec{3}));
  // The whole window is still attributed (gap before + the tile itself).
  EXPECT_NEAR(r.path_attribution.total(), r.makespan_s, kEps);
  EXPECT_GE(r.warnings.size(), 2u);

  AnalysisInput empty;
  empty.source = "trace";
  AnalysisReport r2 = obs::analyze(empty);
  EXPECT_EQ(r2.nranks, 0);
  ASSERT_FALSE(r2.warnings.empty());
}

TEST(Analysis, ReportJsonParsesAndValidatesAgainstSchema) {
  AnalysisReport r = obs::analyze(hand_built_input());
  auto doc = json::parse(obs::report_json(r));
  EXPECT_EQ(doc->at("schema").as_string(), "dpgen.report.v1");
  EXPECT_EQ(doc->at("nranks").as_number(), 2);
  EXPECT_EQ(doc->at("critical_path").at("length").as_number(), 4);
  EXPECT_EQ(doc->at("comm_matrix").at("total_bytes").as_number(), 64);

  auto schema = json::parse(read_file(DPGEN_REPORT_SCHEMA));
  auto errors = json::validate(*schema, *doc);
  for (const auto& e : errors) ADD_FAILURE() << e;

  // The validator actually rejects: a report missing a required section
  // must not pass.
  auto broken = json::parse(R"({"schema":"dpgen.report.v1"})");
  EXPECT_FALSE(json::validate(*schema, *broken).empty());
}

// End-to-end invariants on a real 2-rank x 2-thread engine run with the
// report hook enabled (EngineOptions::report_json_path implies tracing).
TEST(Analysis, EngineRunReportInvariants) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with DPGEN_TRACE=0";
  obs::MetricsRegistry::instance().reset();

  spec::ProblemSpec s;
  s.name("paths")
      .params({"N"})
      .vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .constraint("y >= 0")
      .constraint("y <= N")
      .dep("r1", {1, 0})
      .dep("r2", {0, 1})
      .load_balance({"x", "y"})
      .tile_widths({4, 4})
      .center_code("V[loc] = 0.0;");
  tiling::TilingModel model(s);
  const IntVec params{15};

  engine::EngineOptions opt;
  opt.ranks = 2;
  opt.threads = 2;
  std::string report_path = testing::TempDir() + "/dpgen_report.json";
  opt.report_json_path = report_path;

  auto center = [](const engine::Cell& c) {
    double v = 0.0;
    int any = 0;
    if (c.valid[0]) { v += c.V[c.loc_dep[0]]; any = 1; }
    if (c.valid[1]) { v += c.V[c.loc_dep[1]]; any = 1; }
    c.V[c.loc] = any ? v : 1.0;
  };
  auto result = engine::run(model, params, center, opt);

  ASSERT_TRUE(result.report.has_value());
  const AnalysisReport& r = *result.report;
  EXPECT_EQ(r.source, "engine");
  EXPECT_EQ(r.problem, "paths");
  EXPECT_EQ(r.params, params);
  EXPECT_EQ(r.nranks, 2);
  EXPECT_EQ(r.spans_dropped, 0u);
  EXPECT_GT(r.makespan_s, 0.0);

  // Critical path: non-trivial, chained through dependencies, and its
  // attribution explains the makespan (acceptance bound: within 5%).
  ASSERT_GE(r.critical_path.size(), 2u);
  for (std::size_t i = 1; i < r.critical_path.size(); ++i)
    EXPECT_LE(r.critical_path[i - 1].end_s, r.critical_path[i].end_s);
  EXPECT_NEAR(r.path_attribution.total() / r.makespan_s, 1.0, 0.05);

  // Load balance: every owned tile accounted, the per-rank phase buckets
  // sum to the rank's traced thread-seconds (conservation).
  tiling::LoadBalancer balancer(model, params, opt.ranks, opt.balance);
  ASSERT_EQ(r.ranks.size(), 2u);
  long long tiles = 0;
  double total_predicted = 0.0;
  for (const obs::RankAudit& audit : r.ranks) {
    tiles += audit.tiles;
    total_predicted += audit.predicted_work;
    EXPECT_GT(audit.thread_seconds, 0.0);
    EXPECT_NEAR(audit.phases.total(), audit.thread_seconds,
                1e-6 * audit.thread_seconds + 1e-9);
    EXPECT_GE(audit.wall_s, 0.0);
    EXPECT_LE(audit.measured_compute_s, audit.thread_seconds + 1e-9);
  }
  EXPECT_EQ(tiles, model.total_tiles(params));
  for (int rk = 0; rk < 2; ++rk)
    EXPECT_DOUBLE_EQ(r.ranks[static_cast<std::size_t>(rk)].predicted_work,
                     static_cast<double>(balancer.owned_work(rk)));
  EXPECT_NEAR(total_predicted,
              static_cast<double>(balancer.total_work()), 1e-9);

  // Comm matrix: row/column sums match the per-peer and global counters
  // (the registry was reset above, so this run is the only contribution).
  auto& reg = obs::MetricsRegistry::instance();
  ASSERT_EQ(r.bytes_matrix.size(), 2u);
  ASSERT_EQ(r.messages_matrix.size(), 2u);
  std::uint64_t bytes = 0, messages = 0;
  for (int dst = 0; dst < 2; ++dst) {
    std::uint64_t col_bytes = 0, col_messages = 0;
    for (int src = 0; src < 2; ++src) {
      col_bytes += r.bytes_matrix[static_cast<std::size_t>(src)]
                                 [static_cast<std::size_t>(dst)];
      col_messages += r.messages_matrix[static_cast<std::size_t>(src)]
                                       [static_cast<std::size_t>(dst)];
    }
    EXPECT_EQ(col_bytes,
              static_cast<std::uint64_t>(
                  reg.counter(cat("comm.bytes_sent.to", dst)).value()))
        << "destination " << dst;
    EXPECT_EQ(col_messages,
              static_cast<std::uint64_t>(
                  reg.counter(cat("comm.messages_sent.to", dst)).value()))
        << "destination " << dst;
    bytes += col_bytes;
    messages += col_messages;
  }
  EXPECT_EQ(r.total_bytes, bytes);
  EXPECT_EQ(r.total_messages, messages);
  EXPECT_EQ(bytes, static_cast<std::uint64_t>(
                       reg.counter("comm.bytes_sent").value()));
  EXPECT_EQ(messages, static_cast<std::uint64_t>(
                          reg.counter("comm.messages_sent").value()));
  EXPECT_GT(messages, 0u) << "a 2-rank run must cross the rank boundary";

  // The written file round-trips and validates against the schema.
  auto doc = json::parse(read_file(report_path));
  EXPECT_EQ(doc->at("schema").as_string(), "dpgen.report.v1");
  auto schema = json::parse(read_file(DPGEN_REPORT_SCHEMA));
  for (const auto& e : json::validate(*schema, *doc)) ADD_FAILURE() << e;
  std::remove(report_path.c_str());

  // The report hook must leave tracing off.
  EXPECT_FALSE(obs::Tracer::instance().enabled());
}

// The simulator's replayed timeline goes through the same analyzer.
TEST(Analysis, SimulatedTimelineThroughAnalyzer) {
  spec::ProblemSpec s;
  s.name("paths")
      .params({"N"})
      .vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .constraint("y >= 0")
      .constraint("y <= N")
      .dep("r1", {1, 0})
      .dep("r2", {0, 1})
      .load_balance({"x", "y"})
      .tile_widths({4, 4})
      .center_code("V[loc] = 0.0;");
  tiling::TilingModel model(s);
  const IntVec params{31};

  sim::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.cores_per_node = 2;
  cfg.record_timeline = true;
  auto sim_result = sim::simulate(model, params, cfg);
  ASSERT_FALSE(sim_result.timeline.empty());

  AnalysisInput in = sim::analysis_input(sim_result, model, params, cfg);
  EXPECT_EQ(in.source, "sim");
  AnalysisReport r = obs::analyze(in);
  EXPECT_EQ(r.nranks, cfg.nodes);
  // The analyzer measures from the earliest span start, which may sit a
  // tile-overhead after the simulator's t=0.
  EXPECT_LE(r.makespan_s, sim_result.makespan + 1e-9);
  EXPECT_GT(r.makespan_s, 0.9 * sim_result.makespan);
  ASSERT_GE(r.critical_path.size(), 2u);
  EXPECT_NEAR(r.path_attribution.total(), r.makespan_s,
              0.05 * r.makespan_s);

  // Simulated traffic matrices agree with the simulator's own totals.
  std::uint64_t messages = 0;
  for (const auto& row : r.messages_matrix)
    for (std::uint64_t v : row) messages += v;
  EXPECT_EQ(messages,
            static_cast<std::uint64_t>(sim_result.remote_messages));
  EXPECT_EQ(r.total_bytes,
            static_cast<std::uint64_t>(sim_result.remote_scalars) *
                sizeof(double));

  // Same schema as real runs.
  auto schema = json::parse(read_file(DPGEN_REPORT_SCHEMA));
  auto doc = json::parse(obs::report_json(r));
  for (const auto& e : json::validate(*schema, *doc)) ADD_FAILURE() << e;
}

TEST(Analysis, ReportTextMentionsEverySection) {
  AnalysisReport r = obs::analyze(hand_built_input());
  std::string text = obs::report_text(r);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("load balance"), std::string::npos);
  EXPECT_NE(text.find("comm matrix"), std::string::npos);
  EXPECT_NE(text.find("chain"), std::string::npos);
}

TEST(Analysis, DiffReportsDeltasTheComparableSummary) {
  AnalysisReport before = obs::analyze(hand_built_input());
  AnalysisReport after = before;
  after.makespan_s += 0.5;
  after.path_attribution.compute += 0.4;
  after.path_attribution.idle += 0.1;
  after.critical_path.push_back(after.critical_path.back());
  after.total_bytes += 100;
  after.measured_imbalance += 0.25;

  auto old_doc = json::parse(obs::report_json(before));
  auto new_doc = json::parse(obs::report_json(after));
  obs::ReportDelta d = obs::diff_reports(*old_doc, *new_doc);
  EXPECT_NEAR(d.new_makespan_s - d.old_makespan_s, 0.5, 1e-6);
  EXPECT_EQ(d.new_path_tiles - d.old_path_tiles, 1);
  EXPECT_NEAR(d.new_phases.compute - d.old_phases.compute, 0.4, 1e-6);
  EXPECT_NEAR(d.new_phases.idle - d.old_phases.idle, 0.1, 1e-6);
  EXPECT_NEAR(d.new_total_bytes - d.old_total_bytes, 100.0, 1e-6);
  EXPECT_NEAR(d.new_measured_imbalance - d.old_measured_imbalance, 0.25,
              1e-6);

  std::string text = obs::diff_text(d);
  EXPECT_NE(text.find("makespan_s"), std::string::npos);
  EXPECT_NE(text.find("total_bytes"), std::string::npos);

  auto diff_doc = json::parse(obs::diff_json(d));
  EXPECT_EQ(diff_doc->at("schema").as_string(), "dpgen.reportdiff.v1");
  EXPECT_NEAR(diff_doc->at("delta").at("makespan_s").as_number(), 0.5,
              1e-6);
  EXPECT_NEAR(
      diff_doc->at("delta").at("phases_seconds").at("compute").as_number(),
      0.4, 1e-6);
}

// Regression: a phase bucket present in only one of the two reports (an
// old report predating a new phase, or vice versa) must diff cleanly —
// missing buckets read as zero on the side that lacks them, and the
// one-sided bucket still shows up in the text and JSON deltas.
TEST(Analysis, DiffReportsHandlesOneSidedPhaseBuckets) {
  AnalysisReport base = obs::analyze(hand_built_input());
  auto old_doc = json::parse(obs::report_json(base));
  auto new_doc = json::parse(obs::report_json(base));

  // Splice a non-canonical bucket into the new report's attribution only.
  json::Value& attribution = const_cast<json::Value&>(
      new_doc->at("critical_path").at("attribution_seconds"));
  auto extra = std::make_shared<json::Value>();
  extra->kind = json::Kind::kNumber;
  extra->number = 0.75;
  attribution.fields["gather"] = extra;

  obs::ReportDelta d = obs::diff_reports(*old_doc, *new_doc);
  ASSERT_EQ(d.new_extra_phases.count("gather"), 1u);
  EXPECT_NEAR(d.new_extra_phases.at("gather"), 0.75, 1e-9);
  EXPECT_TRUE(d.old_extra_phases.empty());

  const std::string text = obs::diff_text(d);
  EXPECT_NE(text.find("gather"), std::string::npos);

  auto diff_doc = json::parse(obs::diff_json(d));
  // Old side reads as zero, the delta carries the full new value.
  EXPECT_FALSE(diff_doc->at("old").at("phases_seconds").has("gather"));
  EXPECT_NEAR(
      diff_doc->at("new").at("phases_seconds").at("gather").as_number(),
      0.75, 1e-9);
  EXPECT_NEAR(
      diff_doc->at("delta").at("phases_seconds").at("gather").as_number(),
      0.75, 1e-9);

  // And the mirror image: the bucket only in the OLD report.
  obs::ReportDelta rd = obs::diff_reports(*new_doc, *old_doc);
  ASSERT_EQ(rd.old_extra_phases.count("gather"), 1u);
  EXPECT_TRUE(rd.new_extra_phases.empty());
  auto rdoc = json::parse(obs::diff_json(rd));
  EXPECT_NEAR(
      rdoc->at("delta").at("phases_seconds").at("gather").as_number(),
      -0.75, 1e-9);
}

TEST(Analysis, DiffReportsRejectsNonV1Documents) {
  auto bogus = json::parse("{\"schema\":\"bogus.v0\"}");
  auto good = json::parse(obs::report_json(obs::analyze(hand_built_input())));
  EXPECT_THROW(obs::diff_reports(*bogus, *good), Error);
  EXPECT_THROW(obs::diff_reports(*good, *bogus), Error);
}

}  // namespace
}  // namespace dpgen
