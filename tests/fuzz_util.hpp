#pragma once
// Shared fuzzing helpers: a deterministic RNG, a random-valid-spec
// generator whose center code and engine kernel are guaranteed to match,
// used by both the engine fuzz suite and the codegen fuzz suite.

#include <string>

#include "engine/engine.hpp"
#include "spec/problem_spec.hpp"

namespace dpgen::fuzz {

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
  Int range(Int lo, Int hi) {  // inclusive
    return lo + static_cast<Int>(next() %
                                 static_cast<std::uint64_t>(hi - lo + 1));
  }
};

/// Builds a random valid spec: a box [0,N]^d (d in 1..3), optionally one
/// coupling constraint, sign-consistent random template vectors, random
/// widths, and center code implementing the same weighted sum as
/// generic_kernel.
inline spec::ProblemSpec random_spec(Rng& rng, int* out_ndeps) {
  const int d = static_cast<int>(rng.range(1, 3));
  spec::ProblemSpec s;
  s.name("fuzz").params({"N"});
  std::vector<std::string> vars;
  for (int k = 0; k < d; ++k) vars.push_back("x" + std::to_string(k + 1));
  s.vars(vars);
  for (int k = 0; k < d; ++k) {
    s.constraint(vars[static_cast<std::size_t>(k)] + " >= 0");
    s.constraint(vars[static_cast<std::size_t>(k)] + " <= N");
  }
  if (rng.range(0, 1) == 1 && d >= 2) {
    std::string sum;
    for (int k = 0; k < d; ++k) {
      Int a = rng.range(0, 2);
      if (a == 0) continue;
      sum += (sum.empty() ? "" : " + ") + std::to_string(a) + "*" +
             vars[static_cast<std::size_t>(k)];
    }
    if (!sum.empty()) s.constraint(sum + " <= 2*N");
  }

  std::vector<int> signs;
  for (int k = 0; k < d; ++k)
    signs.push_back(rng.range(0, 1) == 0 ? 1 : -1);

  const int ndeps = static_cast<int>(rng.range(1, 3));
  *out_ndeps = ndeps;
  for (int j = 0; j < ndeps; ++j) {
    IntVec r(static_cast<std::size_t>(d), 0);
    bool nonzero = false;
    while (!nonzero) {
      for (int k = 0; k < d; ++k) {
        Int mag = rng.range(0, 2);
        r[static_cast<std::size_t>(k)] =
            mag * signs[static_cast<std::size_t>(k)];
        if (mag != 0) nonzero = true;
      }
    }
    s.dep("r" + std::to_string(j + 1), r);
  }

  IntVec widths;
  for (int k = 0; k < d; ++k) widths.push_back(rng.range(1, 5));
  s.tile_widths(widths);
  s.load_balance({vars[0]});

  std::string center = "double dp_v = 1.0;\n";
  for (int j = 0; j < ndeps; ++j)
    center += "if (is_valid_r" + std::to_string(j + 1) + ") dp_v += V[loc_r" +
              std::to_string(j + 1) + "] / " + std::to_string(j + 2) +
              ".0;\n";
  center += "V[loc] = dp_v;\n";
  s.center_code(center);
  return s;
}

/// The engine kernel matching random_spec's center code exactly.
inline engine::CenterFn generic_kernel(int ndeps) {
  return [ndeps](const engine::Cell& c) {
    double v = 1.0;
    for (int j = 0; j < ndeps; ++j)
      if (c.valid[j])
        v += c.V[c.loc_dep[j]] / static_cast<double>(j + 2);
    c.V[c.loc] = v;
  };
}

}  // namespace dpgen::fuzz
