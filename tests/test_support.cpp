// Unit tests for the support layer: checked arithmetic, rationals, integer
// vectors, string helpers and the streaming JSON writer.

#include <gtest/gtest.h>

#include <limits>

#include "support/checked.hpp"
#include "support/json.hpp"
#include "support/rational.hpp"
#include "support/str.hpp"
#include "support/vec.hpp"

namespace dpgen {
namespace {

constexpr Int kMax = std::numeric_limits<Int>::max();
constexpr Int kMin = std::numeric_limits<Int>::min();

TEST(Checked, AddBasic) {
  EXPECT_EQ(add_ck(2, 3), 5);
  EXPECT_EQ(add_ck(-2, 3), 1);
  EXPECT_EQ(add_ck(kMax - 1, 1), kMax);
}

TEST(Checked, AddOverflowThrows) {
  EXPECT_THROW(add_ck(kMax, 1), Error);
  EXPECT_THROW(add_ck(kMin, -1), Error);
}

TEST(Checked, SubOverflowThrows) {
  EXPECT_THROW(sub_ck(kMin, 1), Error);
  EXPECT_EQ(sub_ck(kMin + 1, 1), kMin);
}

TEST(Checked, MulOverflowThrows) {
  EXPECT_EQ(mul_ck(1ll << 31, 1ll << 31), 1ll << 62);
  EXPECT_THROW(mul_ck(1ll << 32, 1ll << 32), Error);
  EXPECT_THROW(mul_ck(kMin, -1), Error);
}

TEST(Checked, NegOfMinThrows) {
  EXPECT_THROW(neg_ck(kMin), Error);
  EXPECT_EQ(neg_ck(-5), 5);
}

TEST(Checked, FloorDivRoundsTowardNegativeInfinity) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 3), 2);
  EXPECT_EQ(floor_div(-6, 3), -2);
}

TEST(Checked, CeilDivRoundsTowardPositiveInfinity) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(7, -2), -3);
  EXPECT_EQ(ceil_div(-7, -2), 4);
  EXPECT_EQ(ceil_div(6, 3), 2);
}

TEST(Checked, DivByZeroThrows) {
  EXPECT_THROW(floor_div(1, 0), Error);
  EXPECT_THROW(ceil_div(1, 0), Error);
}

TEST(Checked, GcdLcm) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(0, 0), 0);
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(0, 6), 0);
  EXPECT_EQ(lcm(-4, 6), 12);
}

TEST(Rational, NormalizesOnConstruction) {
  Rat r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_EQ(Rat(0, 7), Rat(0));
  EXPECT_THROW(Rat(1, 0), Error);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rat(1, 2) + Rat(1, 3), Rat(5, 6));
  EXPECT_EQ(Rat(1, 2) - Rat(1, 3), Rat(1, 6));
  EXPECT_EQ(Rat(2, 3) * Rat(9, 4), Rat(3, 2));
  EXPECT_EQ(Rat(2, 3) / Rat(4, 9), Rat(3, 2));
  EXPECT_THROW(Rat(1) / Rat(0), Error);
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rat(1, 3), Rat(1, 2));
  EXPECT_GT(Rat(-1, 3), Rat(-1, 2));
  EXPECT_EQ(Rat(2, 4), Rat(1, 2));
  EXPECT_LE(Rat(5), Rat(5));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rat(7, 2).floor(), 3);
  EXPECT_EQ(Rat(7, 2).ceil(), 4);
  EXPECT_EQ(Rat(-7, 2).floor(), -4);
  EXPECT_EQ(Rat(-7, 2).ceil(), -3);
  EXPECT_EQ(Rat(4).floor(), 4);
  EXPECT_EQ(Rat(4).ceil(), 4);
}

TEST(Rational, IntegerAccess) {
  EXPECT_TRUE(Rat(8, 4).is_integer());
  EXPECT_EQ(Rat(8, 4).as_int(), 2);
  EXPECT_THROW(Rat(1, 2).as_int(), Error);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rat(3).to_string(), "3");
  EXPECT_EQ(Rat(-1, 2).to_string(), "-1/2");
}

TEST(Rational, CrossReductionAvoidsOverflow) {
  // (kBig/1) * (1/kBig) must not overflow thanks to cross-reduction.
  Int big = 1ll << 40;
  EXPECT_EQ(Rat(big) * Rat(1, big), Rat(1));
}

TEST(IntVecOps, AddSubScaleDot) {
  IntVec a{1, 2, 3}, b{4, -5, 6};
  EXPECT_EQ(vec_add(a, b), (IntVec{5, -3, 9}));
  EXPECT_EQ(vec_sub(a, b), (IntVec{-3, 7, -3}));
  EXPECT_EQ(vec_scale(a, -2), (IntVec{-2, -4, -6}));
  EXPECT_EQ(vec_dot(a, b), 4 - 10 + 18);
}

TEST(IntVecOps, IsZeroAndToString) {
  EXPECT_TRUE(vec_is_zero(IntVec{0, 0}));
  EXPECT_FALSE(vec_is_zero(IntVec{0, 1}));
  EXPECT_EQ(vec_to_string(IntVec{1, -2}), "(1, -2)");
  EXPECT_EQ(vec_to_string(IntVec{}), "()");
}

TEST(IntVecOps, HashDistinguishesPermutations) {
  IntVecHash h;
  EXPECT_NE(h(IntVec{1, 2}), h(IntVec{2, 1}));
  EXPECT_EQ(h(IntVec{1, 2}), h(IntVec{1, 2}));
}

TEST(Str, TrimSplitJoin) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(split("a, b,,c", ", "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(Str, Identifier) {
  EXPECT_TRUE(is_identifier("abc_1"));
  EXPECT_TRUE(is_identifier("_x"));
  EXPECT_FALSE(is_identifier("1x"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
}

TEST(Str, Cat) {
  EXPECT_EQ(cat("x=", 5, "!"), "x=5!");
}

TEST(ErrorHandling, CheckMacroThrows) {
  EXPECT_THROW(DPGEN_CHECK(false, "boom"), Error);
  EXPECT_NO_THROW(DPGEN_CHECK(true, "fine"));
  try {
    DPGEN_CHECK(false, "specific message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "specific message");
  }
}

TEST(ErrorHandling, AssertMacroMentionsLocation) {
  try {
    DPGEN_ASSERT(1 == 2);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_support.cpp"),
              std::string::npos);
  }
}

TEST(JsonWriter, NestedContainersManageCommas) {
  json::Writer w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").begin_array();
  w.value(true).value("x\"y\n").null();
  w.end_array();
  w.key("c").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[true,\"x\\\"y\\n\",null],\"c\":{}}");
}

TEST(JsonWriter, NonFiniteDoublesSerializeAsNull) {
  json::Writer w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(0.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,0.5]");
  // The round trip holds: the emitted document parses.
  EXPECT_EQ(json::parse(w.str())->as_array().size(), 3u);
}

TEST(JsonWriter, MisuseThrowsInsteadOfCorrupting) {
  {
    json::Writer w;
    EXPECT_THROW(w.key("k"), std::runtime_error);  // key outside object
  }
  {
    json::Writer w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::runtime_error);  // value without key
  }
  {
    json::Writer w;
    w.begin_array();
    EXPECT_THROW(w.str(), std::runtime_error);  // still-open container
  }
  {
    json::Writer w;
    w.begin_array();
    EXPECT_THROW(w.end_object(), std::runtime_error);  // mismatched close
  }
}

}  // namespace
}  // namespace dpgen
