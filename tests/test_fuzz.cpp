// Property fuzzing: randomly generated problem specifications executed
// through two independent paths — the tiled hybrid engine (2 ranks x 2
// threads) and the serial dense-array reference — must agree at every
// location.  This exercises arbitrary dependency sets (mixed directions
// across dimensions, multi-tile-crossing vectors), widths, couplings and
// boundary clipping far beyond the hand-written problems.

#include <gtest/gtest.h>

#include "engine/serial.hpp"
#include "fuzz_util.hpp"
#include "poly/parse.hpp"
#include "problems/problems.hpp"
#include "spec/parser.hpp"

namespace dpgen::engine {
namespace {

using fuzz::Rng;
using fuzz::generic_kernel;
using fuzz::random_spec;

class FuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweep, TiledHybridMatchesSerialReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  int ndeps = 0;
  spec::ProblemSpec s = random_spec(rng, &ndeps);
  SCOPED_TRACE(s.to_text());
  tiling::TilingModel model(std::move(s));
  IntVec params{7};
  CenterFn kernel = generic_kernel(ndeps);

  auto serial = run_serial(model, params, kernel);

  EngineOptions opt;
  opt.ranks = 2;
  opt.threads = 2;
  opt.record_all = true;
  opt.poison_buffers = true;  // surface any read of an unfilled ghost
  auto tiled = run(model, params, kernel, opt);

  ASSERT_EQ(tiled.values.size(), serial.values.size());
  for (const auto& [point, value] : serial.values) {
    ASSERT_DOUBLE_EQ(tiled.at(point), value) << vec_to_string(point);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(1, 25));

TEST(FuzzSpecSerialisation, RandomSpecsRoundTripThroughText) {
  for (int seed = 1; seed <= 15; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed));
    int ndeps = 0;
    spec::ProblemSpec s = random_spec(rng, &ndeps);
    s.validate();
    spec::ProblemSpec back = spec::parse_spec(s.to_text());
    EXPECT_EQ(back.var_names(), s.var_names());
    EXPECT_EQ(back.widths(), s.widths());
    EXPECT_EQ(back.deps().size(), s.deps().size());
    for (std::size_t j = 0; j < s.deps().size(); ++j)
      EXPECT_EQ(back.deps()[j].vec, s.deps()[j].vec);
    EXPECT_EQ(back.space().size(), s.space().size());
    // The serialised constraints must define exactly the same polytope.
    EXPECT_TRUE(poly::semantically_equal(back.space(), s.space()))
        << s.to_text();
  }
}

TEST(SemanticEquality, DetectsInclusionAndDifference) {
  poly::Vars v({"x", "y"});
  poly::System tri(v);
  tri.add(poly::parse_constraint("x >= 0", v));
  tri.add(poly::parse_constraint("y >= 0", v));
  tri.add(poly::parse_constraint("x + y <= 4", v));
  poly::System box(v);
  box.add(poly::parse_constraint("x >= 0", v));
  box.add(poly::parse_constraint("y >= 0", v));
  box.add(poly::parse_constraint("x <= 4", v));
  box.add(poly::parse_constraint("y <= 4", v));
  EXPECT_TRUE(poly::semantically_contains(box, tri));   // tri inside box
  EXPECT_FALSE(poly::semantically_contains(tri, box));  // box not in tri
  EXPECT_FALSE(poly::semantically_equal(tri, box));
  // A redundant reformulation is recognised as equal.
  poly::System tri2 = tri;
  tri2.add(poly::parse_constraint("x <= 9", v));
  EXPECT_TRUE(poly::semantically_equal(tri, tri2));
}

}  // namespace
}  // namespace dpgen::engine
