// Unit tests for the minimpi message-passing substrate: point-to-point
// semantics, bounded mailboxes, collectives and error propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "minimpi/world.hpp"

namespace dpgen::minimpi {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(MiniMpi, PointToPointDelivery) {
  World world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      auto payload = bytes({1, 2, 3});
      comm.send(1, 7, payload.data(), payload.size());
    } else {
      Message m = comm.recv();
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 7);
      EXPECT_EQ(m.payload, bytes({1, 2, 3}));
    }
  });
}

TEST(MiniMpi, FifoPerSender) {
  World world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i) {
        std::uint8_t b = static_cast<std::uint8_t>(i);
        comm.send(1, i, &b, 1);
      }
    } else {
      for (int i = 0; i < 50; ++i) {
        Message m = comm.recv();
        EXPECT_EQ(m.tag, i);
        EXPECT_EQ(m.payload[0], static_cast<std::uint8_t>(i));
      }
    }
  });
}

TEST(MiniMpi, TryRecvAndIprobe) {
  World world(1);
  Comm& comm = world.comm(0);
  EXPECT_FALSE(comm.iprobe());
  EXPECT_FALSE(comm.try_recv().has_value());
  std::uint8_t b = 42;
  comm.send(0, 5, &b, 1);  // self-send
  int src = -1, tag = -1;
  EXPECT_TRUE(comm.iprobe(&src, &tag));
  EXPECT_EQ(src, 0);
  EXPECT_EQ(tag, 5);
  auto m = comm.try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 42);
  EXPECT_FALSE(comm.iprobe());
}

TEST(MiniMpi, EmptyPayloadAllowed) {
  World world(1);
  Comm& comm = world.comm(0);
  comm.send(0, 1, nullptr, 0);
  auto m = comm.try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->payload.empty());
}

TEST(MiniMpi, TrySendRespectsCapacity) {
  World world(2, /*mailbox_capacity=*/2);
  Comm& comm = world.comm(0);
  std::uint8_t b = 0;
  EXPECT_TRUE(comm.try_send(1, 0, &b, 1));
  EXPECT_TRUE(comm.try_send(1, 0, &b, 1));
  EXPECT_FALSE(comm.try_send(1, 0, &b, 1));  // full
  EXPECT_EQ(comm.blocked_sends(), 1u);
  ASSERT_TRUE(world.comm(1).try_recv().has_value());
  EXPECT_TRUE(comm.try_send(1, 0, &b, 1));  // space again
}

TEST(MiniMpi, BlockingSendWaitsForSpace) {
  World world(2, /*mailbox_capacity=*/1);
  std::atomic<bool> second_send_done{false};
  std::thread sender([&] {
    Comm& c = world.comm(0);
    std::uint8_t b = 1;
    c.send(1, 0, &b, 1);
    b = 2;
    c.send(1, 0, &b, 1);  // must block until the receiver drains
    second_send_done = true;
  });
  // Give the sender time to block on the second send.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_send_done.load());
  auto m1 = world.comm(1).recv();
  EXPECT_EQ(m1.payload[0], 1);
  auto m2 = world.comm(1).recv();
  EXPECT_EQ(m2.payload[0], 2);
  sender.join();
  EXPECT_TRUE(second_send_done.load());
}

TEST(MiniMpi, SendToInvalidRankThrows) {
  World world(2);
  std::uint8_t b = 0;
  EXPECT_THROW(world.comm(0).send(5, 0, &b, 1), Error);
  EXPECT_THROW(world.comm(0).try_send(-1, 0, &b, 1), Error);
}

TEST(MiniMpi, BarrierSynchronizesRanks) {
  const int kRanks = 4;
  World world(kRanks);
  std::atomic<int> before{0}, after{0};
  world.run([&](Comm& comm) {
    ++before;
    comm.barrier();
    // After the barrier every rank must have incremented `before`.
    EXPECT_EQ(before.load(), kRanks);
    ++after;
    comm.barrier();
    EXPECT_EQ(after.load(), kRanks);
  });
}

TEST(MiniMpi, RepeatedBarriers) {
  World world(3);
  world.run([&](Comm& comm) {
    for (int i = 0; i < 100; ++i) comm.barrier();
  });
}

TEST(MiniMpi, AllreduceSumInt) {
  World world(4);
  world.run([&](Comm& comm) {
    Int total = comm.allreduce_sum(Int{comm.rank() + 1});
    EXPECT_EQ(total, 1 + 2 + 3 + 4);
  });
}

TEST(MiniMpi, AllreduceSumDoubleAndMax) {
  World world(3);
  world.run([&](Comm& comm) {
    double s = comm.allreduce_sum(0.5 * (comm.rank() + 1));
    EXPECT_DOUBLE_EQ(s, 0.5 + 1.0 + 1.5);
    double mx = comm.allreduce_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(mx, 2.0);
  });
}

TEST(MiniMpi, ConsecutiveAllreducesKeepResultsSeparate) {
  World world(2);
  world.run([&](Comm& comm) {
    for (Int i = 0; i < 50; ++i)
      EXPECT_EQ(comm.allreduce_sum(i), 2 * i);
  });
}

TEST(MiniMpi, StatsCountMessagesAndBytes) {
  World world(2);
  Comm& c = world.comm(0);
  std::vector<std::uint8_t> payload(10, 0);
  c.send(1, 0, payload.data(), payload.size());
  c.send(1, 0, payload.data(), 4);
  EXPECT_EQ(c.messages_sent(), 2u);
  EXPECT_EQ(c.bytes_sent(), 14u);
}

TEST(MiniMpi, PerPeerStatsSumToTotals) {
  World world(3);
  Comm& c = world.comm(0);
  std::vector<std::uint8_t> payload(10, 0);
  c.send(1, 0, payload.data(), payload.size());
  c.send(1, 0, payload.data(), 4);
  c.send(2, 0, payload.data(), 7);
  EXPECT_EQ(c.messages_sent_to(1), 2u);
  EXPECT_EQ(c.bytes_sent_to(1), 14u);
  EXPECT_EQ(c.messages_sent_to(2), 1u);
  EXPECT_EQ(c.bytes_sent_to(2), 7u);
  EXPECT_EQ(c.messages_sent_to(0), 0u);
  // Row sums reproduce the per-comm totals.
  std::uint64_t messages = 0, bytes = 0;
  for (int r = 0; r < 3; ++r) {
    messages += c.messages_sent_to(r);
    bytes += c.bytes_sent_to(r);
  }
  EXPECT_EQ(messages, c.messages_sent());
  EXPECT_EQ(bytes, c.bytes_sent());
}

TEST(MiniMpi, CommMatricesMatchPerPeerCounters) {
  World world(3);
  std::vector<std::uint8_t> payload(8, 0);
  world.comm(0).send(1, 0, payload.data(), 8);
  world.comm(0).send(2, 0, payload.data(), 3);
  world.comm(1).send(2, 0, payload.data(), 5);
  world.comm(2).send(0, 0, payload.data(), 1);
  // Drain so the world can be torn down cleanly.
  for (int r = 0; r < 3; ++r)
    while (world.comm(r).try_recv()) {}

  auto bytes = world.bytes_matrix();
  auto messages = world.messages_matrix();
  ASSERT_EQ(bytes.size(), 3u);
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(bytes[0][1], 8u);
  EXPECT_EQ(bytes[0][2], 3u);
  EXPECT_EQ(bytes[1][2], 5u);
  EXPECT_EQ(bytes[2][0], 1u);
  EXPECT_EQ(messages[0][1], 1u);
  EXPECT_EQ(messages[1][0], 0u);
  for (int src = 0; src < 3; ++src) {
    std::uint64_t row_bytes = 0, row_messages = 0;
    for (int dst = 0; dst < 3; ++dst) {
      row_bytes += bytes[static_cast<std::size_t>(src)]
                        [static_cast<std::size_t>(dst)];
      row_messages += messages[static_cast<std::size_t>(src)]
                              [static_cast<std::size_t>(dst)];
    }
    EXPECT_EQ(row_bytes, world.comm(src).bytes_sent()) << "rank " << src;
    EXPECT_EQ(row_messages, world.comm(src).messages_sent())
        << "rank " << src;
  }
}

TEST(MiniMpi, CollectivesCountInPerPeerStats) {
  // Collectives route through send(), so the comm matrix accounts for
  // their traffic too and row sums keep matching messages_sent().
  World world(3);
  world.run([&](Comm& comm) {
    long long v = comm.rank() == 0 ? 42 : 0;
    comm.broadcast(0, &v, sizeof v);
    EXPECT_EQ(v, 42);
    std::uint8_t b = static_cast<std::uint8_t>(comm.rank());
    std::vector<std::uint8_t> all;
    comm.gather(0, &b, 1, comm.rank() == 0 ? &all : nullptr);
  });
  auto messages = world.messages_matrix();
  // Broadcast: root sent to both non-roots.  Gather: both non-roots sent
  // to the root.
  EXPECT_GE(messages[0][1], 1u);
  EXPECT_GE(messages[0][2], 1u);
  EXPECT_GE(messages[1][0], 1u);
  EXPECT_GE(messages[2][0], 1u);
  for (int src = 0; src < 3; ++src) {
    std::uint64_t row = 0;
    for (int dst = 0; dst < 3; ++dst)
      row += messages[static_cast<std::size_t>(src)]
                     [static_cast<std::size_t>(dst)];
    EXPECT_EQ(row, world.comm(src).messages_sent()) << "rank " << src;
  }
}

TEST(MiniMpi, RunPropagatesExceptions) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& comm) {
    comm.barrier();
    if (comm.rank() == 1) raise("boom on rank 1");
  }),
               Error);
}

TEST(MiniMpi, ManyToOneStress) {
  const int kRanks = 5, kPerRank = 200;
  World world(kRanks);
  std::atomic<long long> sum{0};
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < (kRanks - 1) * kPerRank; ++i) {
        Message m = comm.recv();
        sum += m.payload[0];
      }
    } else {
      for (int i = 0; i < kPerRank; ++i) {
        std::uint8_t b = static_cast<std::uint8_t>(comm.rank());
        comm.send(0, i, &b, 1);
      }
    }
  });
  EXPECT_EQ(sum.load(), kPerRank * (1 + 2 + 3 + 4));
}

TEST(MiniMpi, WorldNeedsAtLeastOneRank) {
  EXPECT_THROW(World(0), Error);
}

TEST(MiniMpiRequests, IsendCompletesImmediatelyWhenUnbounded) {
  World world(2);
  std::uint8_t b = 9;
  Request r = world.comm(0).isend(1, 3, &b, 1);
  EXPECT_TRUE(r.done());
  auto m = world.comm(1).try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 9);
}

TEST(MiniMpiRequests, IsendDefersUntilSpace) {
  World world(2, /*mailbox_capacity=*/1);
  Comm& c = world.comm(0);
  std::uint8_t b = 1;
  c.send(1, 0, &b, 1);  // fills the mailbox
  b = 2;
  Request r = c.isend(1, 0, &b, 1);
  EXPECT_FALSE(r.done());
  EXPECT_FALSE(r.test());  // still full
  (void)world.comm(1).try_recv();
  EXPECT_TRUE(r.test());  // delivered now
  auto m = world.comm(1).try_recv();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload[0], 2);
}

TEST(MiniMpiRequests, IrecvMatchesSourceAndTag) {
  World world(3);
  Comm& c = world.comm(2);
  std::uint8_t b = 1;
  world.comm(0).send(2, 5, &b, 1);
  b = 2;
  world.comm(1).send(2, 7, &b, 1);

  // Match on tag only: picks the tag-7 message even though it arrived
  // second.
  Request r = c.irecv(/*source=*/-1, /*tag=*/7);
  ASSERT_TRUE(r.done());
  EXPECT_EQ(r.message().source, 1);
  EXPECT_EQ(r.message().payload[0], 2);

  // Match on source.
  Request r2 = c.irecv(/*source=*/0);
  ASSERT_TRUE(r2.done());
  EXPECT_EQ(r2.message().tag, 5);

  // Nothing left.
  Request r3 = c.irecv();
  EXPECT_FALSE(r3.done());
}

TEST(MiniMpiRequests, WaitBlocksUntilArrival) {
  World world(2);
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      Request r = comm.irecv(1, 42);
      r.wait();
      EXPECT_EQ(r.message().payload[0], 77);
      EXPECT_TRUE(r.test());  // idempotent after completion
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      std::uint8_t b = 77;
      comm.send(0, 42, &b, 1);
    }
  });
}

TEST(MiniMpiCollectives, BroadcastDeliversRootPayload) {
  World world(4);
  world.run([&](Comm& comm) {
    long long value = comm.rank() == 2 ? 424242 : -1;
    comm.broadcast(2, &value, sizeof value);
    EXPECT_EQ(value, 424242);
    // Repeated broadcasts from different roots stay matched.
    double d = comm.rank() == 0 ? 2.5 : 0.0;
    comm.broadcast(0, &d, sizeof d);
    EXPECT_DOUBLE_EQ(d, 2.5);
  });
}

TEST(MiniMpiCollectives, GatherConcatenatesInRankOrder) {
  World world(3);
  world.run([&](Comm& comm) {
    std::uint8_t mine[2] = {static_cast<std::uint8_t>(comm.rank()),
                            static_cast<std::uint8_t>(comm.rank() * 10)};
    std::vector<std::uint8_t> all;
    comm.gather(1, mine, sizeof mine, comm.rank() == 1 ? &all : nullptr);
    if (comm.rank() == 1) {
      ASSERT_EQ(all.size(), 6u);
      EXPECT_EQ(all, (std::vector<std::uint8_t>{0, 0, 1, 10, 2, 20}));
    }
  });
}

TEST(MiniMpiCollectives, InvalidRootRejected) {
  World world(2);
  long long v = 0;
  EXPECT_THROW(world.comm(0).broadcast(5, &v, sizeof v), Error);
  EXPECT_THROW(world.comm(0).gather(-1, &v, sizeof v, nullptr), Error);
}

TEST(MiniMpiRequests, MisuseIsRejected) {
  World world(2);
  Request empty;
  EXPECT_THROW(empty.test(), Error);
  Request send = world.comm(0).isend(1, 0, nullptr, 0);
  EXPECT_THROW(send.message(), Error);  // message() is recv-only
  EXPECT_THROW(world.comm(0).isend(9, 0, nullptr, 0), Error);
}

TEST(MiniMpi, MultipleWorkerThreadsShareOneComm) {
  // The runtime's usage pattern: several worker threads of one rank send
  // and poll concurrently through the same Comm.
  static constexpr int kWorkers = 4, kPerWorker = 100;
  World world(2);
  std::atomic<int> received{0};
  world.run([&](Comm& comm) {
    std::vector<std::thread> workers;
    if (comm.rank() == 0) {
      for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&comm, w] {
          for (int i = 0; i < kPerWorker; ++i) {
            std::uint8_t b = static_cast<std::uint8_t>(w);
            comm.send(1, w * 1000 + i, &b, 1);
          }
        });
      }
    } else {
      for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&comm, &received] {
          while (received.load() < kWorkers * kPerWorker) {
            if (comm.try_recv())
              ++received;
            else
              std::this_thread::yield();
          }
        });
      }
    }
    for (auto& t : workers) t.join();
    comm.barrier();
  });
  EXPECT_EQ(received.load(), kWorkers * kPerWorker);
  EXPECT_EQ(world.comm(0).messages_sent(),
            static_cast<std::uint64_t>(kWorkers * kPerWorker));
}

TEST(MiniMpi, BoundedMailboxUnderConcurrentLoad) {
  // Bounded buffers with concurrent senders and a draining receiver:
  // everything must arrive, and blocked sends must be recorded.
  World world(2, /*mailbox_capacity=*/2);
  std::atomic<long long> sum{0};
  const int kMessages = 300;
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::thread> senders;
      for (int w = 0; w < 3; ++w) {
        senders.emplace_back([&comm] {
          for (int i = 0; i < kMessages / 3; ++i) {
            std::uint8_t b = 1;
            comm.send(1, 0, &b, 1);
          }
        });
      }
      for (auto& t : senders) t.join();
    } else {
      for (int i = 0; i < kMessages; ++i) sum += comm.recv().payload[0];
    }
  });
  EXPECT_EQ(sum.load(), kMessages);
}

}  // namespace
}  // namespace dpgen::minimpi
