// Oracle tests: every packaged problem, executed through the full hybrid
// engine, must match its independent serial reference solver, across rank
// and thread counts.

#include <gtest/gtest.h>

#include "problems/problems.hpp"

namespace dpgen::problems {
namespace {

double run_engine(const Problem& p, const IntVec& params, int ranks = 1,
                  int threads = 1) {
  tiling::TilingModel model(p.spec);
  engine::EngineOptions opt;
  opt.ranks = ranks;
  opt.threads = threads;
  opt.probes = {p.objective};
  auto result = engine::run(model, params, p.kernel, opt);
  return result.at(p.objective);
}

TEST(Bandit2, MatchesReferenceAcrossN) {
  Problem p = bandit2(4);
  for (Int n : {0, 1, 2, 5, 9, 14}) {
    double expected = p.reference({n});
    EXPECT_NEAR(run_engine(p, {n}), expected, 1e-12) << "N=" << n;
  }
}

TEST(Bandit2, TrivialCasesHaveKnownValues) {
  Problem p = bandit2(4);
  // N=0: no pulls, no successes.
  EXPECT_DOUBLE_EQ(p.reference({0}), 0.0);
  // N=1: one pull of an arm with uniform prior: expected successes 1/2.
  EXPECT_DOUBLE_EQ(p.reference({1}), 0.5);
  EXPECT_NEAR(run_engine(p, {1}), 0.5, 1e-15);
}

TEST(Bandit2, ValueGrowsSublinearlyButAboveHalfN) {
  // With learning, the optimal policy beats the myopic 0.5 per pull.
  Problem p = bandit2(4);
  double v10 = p.reference({10});
  EXPECT_GT(v10, 5.0);
  EXPECT_LT(v10, 10.0);
}

TEST(Bandit2, HybridRunsMatchReference) {
  Problem p = bandit2(3);
  double expected = p.reference({12});
  for (int ranks : {1, 2, 3})
    for (int threads : {1, 2})
      EXPECT_NEAR(run_engine(p, {12}, ranks, threads), expected, 1e-12)
          << ranks << " ranks, " << threads << " threads";
}

TEST(Bandit3, MatchesReference) {
  Problem p = bandit3(3);
  for (Int n : {0, 1, 4, 7}) {
    double expected = p.reference({n});
    EXPECT_NEAR(run_engine(p, {n}), expected, 1e-12) << "N=" << n;
  }
  EXPECT_NEAR(run_engine(p, {7}, 2, 2), p.reference({7}), 1e-12);
}

TEST(Bandit3, ThreeArmsBeatTwoArms) {
  // More arms to learn about can only help an optimal learner.
  double v2 = bandit2().reference({8});
  double v3 = bandit3().reference({8});
  EXPECT_GE(v3, v2 - 1e-12);
}

TEST(Bandit2Delay, MatchesReference) {
  Problem p = bandit2_delay(3);
  for (Int n : {0, 1, 3, 6}) {
    double expected = p.reference({n});
    EXPECT_NEAR(run_engine(p, {n}), expected, 1e-12) << "N=" << n;
  }
  EXPECT_NEAR(run_engine(p, {6}, 2, 2), p.reference({6}), 1e-12);
}

TEST(Bandit2Delay, DelayNeverHelps) {
  // Observing results immediately (bandit2) dominates deciding with
  // delayed feedback under the same horizon.
  double delayed = bandit2_delay().reference({8});
  double immediate = bandit2().reference({8});
  EXPECT_LE(delayed, immediate + 1e-12);
}

TEST(Msa2, IdenticalSequencesAlignFree) {
  Problem p = msa({"ACGTACGT", "ACGTACGT"}, 4);
  IntVec params = sequence_params({"ACGTACGT", "ACGTACGT"});
  EXPECT_DOUBLE_EQ(p.reference(params), 0.0);
  EXPECT_DOUBLE_EQ(run_engine(p, params), 0.0);
}

TEST(Msa2, EmptyAgainstNonEmptyCostsAllGaps) {
  std::vector<std::string> seqs{"", "ACG"};
  Problem p = msa(seqs, 4, 1.0, 2.0);
  IntVec params = sequence_params(seqs);
  EXPECT_DOUBLE_EQ(p.reference(params), 6.0);  // 3 gaps at cost 2
  EXPECT_DOUBLE_EQ(run_engine(p, params), 6.0);
}

TEST(Msa2, EditDistanceKitten) {
  // With unit mismatch and gap costs, 2-sequence MSA is edit distance:
  // kitten -> sitting is the classic 3.
  Problem p = edit_distance("kitten", "sitting", 4);
  IntVec params = sequence_params({"kitten", "sitting"});
  EXPECT_DOUBLE_EQ(p.reference(params), 3.0);
  EXPECT_DOUBLE_EQ(run_engine(p, params), 3.0);
  EXPECT_DOUBLE_EQ(run_engine(p, params, 2, 2), 3.0);
}

TEST(Msa3, MatchesReferenceOnRandomDna) {
  std::vector<std::string> seqs{random_dna(10, 1), random_dna(12, 2),
                                random_dna(9, 3)};
  Problem p = msa(seqs, 4);
  IntVec params = sequence_params(seqs);
  double expected = p.reference(params);
  EXPECT_GT(expected, 0.0);
  for (int ranks : {1, 2})
    EXPECT_NEAR(run_engine(p, params, ranks, 2), expected, 1e-12);
}

TEST(Msa4, FourSequencesSupported) {
  std::vector<std::string> seqs{random_dna(6, 4), random_dna(7, 5),
                                random_dna(5, 6), random_dna(6, 7)};
  Problem p = msa(seqs, 3);
  IntVec params = sequence_params(seqs);
  EXPECT_NEAR(run_engine(p, params), p.reference(params), 1e-12);
}

TEST(Msa, RejectsWrongSequenceCounts) {
  EXPECT_THROW(msa({"A"}), Error);
  EXPECT_THROW(msa({"A", "B", "C", "D", "E"}), Error);
}

TEST(Lcs2, ClassicExample) {
  std::vector<std::string> seqs{"ABCBDAB", "BDCABA"};
  Problem p = lcs(seqs, 4);
  IntVec params = sequence_params(seqs);
  EXPECT_DOUBLE_EQ(p.reference(params), 4.0);  // e.g. BCAB
  EXPECT_DOUBLE_EQ(run_engine(p, params), 4.0);
}

TEST(Lcs3, MatchesReferenceAndIsAtMostPairwise) {
  std::vector<std::string> seqs{random_dna(12, 10), random_dna(11, 11),
                                random_dna(13, 12)};
  Problem p3 = lcs(seqs, 4);
  IntVec params3 = sequence_params(seqs);
  double l3 = p3.reference(params3);
  EXPECT_NEAR(run_engine(p3, params3, 2, 1), l3, 1e-12);
  // LCS of three strings cannot exceed the LCS of any pair.
  Problem p2 = lcs({seqs[0], seqs[1]}, 8);
  double l2 = p2.reference(sequence_params({seqs[0], seqs[1]}));
  EXPECT_LE(l3, l2 + 1e-12);
}

TEST(Lcs2, EmptyStringGivesZero) {
  std::vector<std::string> seqs{"", "ACGT"};
  Problem p = lcs(seqs, 4);
  EXPECT_DOUBLE_EQ(run_engine(p, sequence_params(seqs)), 0.0);
}

TEST(SeamCarving, MatchesReferenceOnTrellis) {
  Problem p = seam_carving(8);
  for (IntVec params : {IntVec{6, 9}, IntVec{15, 4}, IntVec{20, 20}}) {
    double expected = p.reference(params);
    EXPECT_DOUBLE_EQ(run_engine(p, params), expected)
        << vec_to_string(params);
  }
  EXPECT_DOUBLE_EQ(run_engine(p, {20, 20}, 2, 2), p.reference({20, 20}));
}

TEST(SeamCarving, MixedLateralSignsValidateWithStripTiles) {
  Problem p = seam_carving(8);
  EXPECT_EQ(p.spec.dep_signs()[0], 1);   // pipelined dimension
  // The lateral dimension's direction is fixed by the tile offsets of the
  // (1,-1)/(1,+1) deps only when strips are not used; with width-1 strips
  // every tile offset leads with the t component.
  EXPECT_EQ(p.spec.widths()[0], 1);
}

TEST(SeamCarving, WideTimeTilesRejected) {
  // With t tile width >= 2 the lateral deps produce same-row tile offsets
  // in both directions -> cyclic tile dependencies -> must be rejected.
  spec::ProblemSpec s;
  s.name("bad_seam")
      .params({"T", "S"})
      .vars({"t", "s"})
      .constraint("t >= 0")
      .constraint("t <= T")
      .constraint("s >= 0")
      .constraint("s <= S")
      .dep("dl", {1, -1})
      .dep("dr", {1, 1})
      .tile_widths({4, 4})
      .center_code("V[loc] = 0.0;");
  s.validate();  // cell-level scan directions are fine...
  // ...but the tile graph is cyclic: same-row tiles wait on each other.
  EXPECT_THROW(tiling::TilingModel{std::move(s)}, Error);
}

TEST(SeamCarving, SeamCostIsMonotoneInFieldSize) {
  // Adding rows can only increase the accumulated energy of the best
  // seam (energies are nonnegative).
  Problem p = seam_carving(8);
  EXPECT_LE(p.reference({5, 10}), p.reference({9, 10}));
}

TEST(AffineAlignment, GapOpenVsExtendIsHonoured) {
  // One long gap must beat two short ones when opening is expensive:
  // a = "AAAA", b = "AABAA" needs one insertion; a = "ACA", b = "ABCBA"
  // needs two separate insertions.
  Problem one_gap = align_affine("AAAA", "AABAA", 1.0, 3.0, 1.0, 4);
  IntVec p1 = sequence_params({"AAAA", "AABAA"});
  EXPECT_DOUBLE_EQ(one_gap.reference(p1), 3.0);  // single open
  EXPECT_DOUBLE_EQ(run_engine(one_gap, p1), 3.0);

  // A contiguous 2-gap costs open+extend (4), two scattered 1-gaps cost
  // 2*open (6).
  Problem two_gap = align_affine("AAAA", "AABBAA", 1.0, 3.0, 1.0, 4);
  IntVec p2 = sequence_params({"AAAA", "AABBAA"});
  EXPECT_DOUBLE_EQ(two_gap.reference(p2), 4.0);
  EXPECT_DOUBLE_EQ(run_engine(two_gap, p2), 4.0);
}

TEST(AffineAlignment, MatchesGotohOracleOnRandomDna) {
  std::string a = random_dna(14, 31), b = random_dna(17, 32);
  Problem p = align_affine(a, b, 1.0, 2.5, 0.5, 6);
  IntVec params = sequence_params({a, b});
  double expected = p.reference(params);
  EXPECT_NEAR(run_engine(p, params), expected, 1e-12);
  EXPECT_NEAR(run_engine(p, params, 2, 2), expected, 1e-12);
}

TEST(AffineAlignment, ReducesToLinearGapsWhenOpenEqualsExtend) {
  // With gap_open == gap_extend the affine model must equal the linear
  // 2-sequence MSA cost.
  std::string a = random_dna(10, 41), b = random_dna(12, 42);
  Problem affine = align_affine(a, b, 1.0, 2.0, 2.0, 4);
  Problem linear = msa({a, b}, 4, 1.0, 2.0);
  IntVec params = sequence_params({a, b});
  EXPECT_DOUBLE_EQ(affine.reference(params), linear.reference(params));
  EXPECT_DOUBLE_EQ(run_engine(affine, params),
                   run_engine(linear, params));
}

TEST(AffineAlignment, IdenticalStringsAlignFree) {
  Problem p = align_affine("ACGTACGT", "ACGTACGT");
  IntVec params = sequence_params({"ACGTACGT", "ACGTACGT"});
  EXPECT_DOUBLE_EQ(p.reference(params), 0.0);
  EXPECT_DOUBLE_EQ(run_engine(p, params), 0.0);
}

TEST(AffineAlignment, RejectsExtendAboveOpen) {
  EXPECT_THROW(align_affine("A", "A", 1.0, 1.0, 2.0), Error);
}

double run_sw(const Problem& p, const IntVec& params, int ranks = 1,
              int threads = 1) {
  tiling::TilingModel model(p.spec);
  engine::EngineOptions opt;
  opt.ranks = ranks;
  opt.threads = threads;
  opt.track_max = true;
  return engine::run(model, params, p.kernel, opt).max_value;
}

TEST(SmithWaterman, IdenticalStringsScorePerfectly) {
  Problem p = smith_waterman("ACGTACGT", "ACGTACGT", 2.0, -1.0, -1.0, 4);
  IntVec params = sequence_params({"ACGTACGT", "ACGTACGT"});
  EXPECT_DOUBLE_EQ(p.reference(params), 16.0);  // 8 matches x 2
  EXPECT_DOUBLE_EQ(run_sw(p, params), 16.0);
}

TEST(SmithWaterman, LocalAlignmentIgnoresBadFlanks) {
  // The shared core "CACAC" aligns locally; the mismatched flanks must
  // not drag the score below the core's value.
  Problem p = smith_waterman("TTTTCACACTTTT", "GGGGCACACGGGG", 2.0, -1.0,
                             -1.0, 4);
  IntVec params = sequence_params({"TTTTCACACTTTT", "GGGGCACACGGGG"});
  EXPECT_DOUBLE_EQ(p.reference(params), 10.0);  // 5 matches x 2
  EXPECT_DOUBLE_EQ(run_sw(p, params, 2, 2), 10.0);
}

TEST(SmithWaterman, MatchesOracleOnRandomDna) {
  std::string a = random_dna(30, 61), b = random_dna(26, 62);
  Problem p = smith_waterman(a, b, 2.0, -1.0, -1.0, 6);
  IntVec params = sequence_params({a, b});
  double expected = p.reference(params);
  EXPECT_GT(expected, 0.0);
  for (int ranks : {1, 3})
    EXPECT_DOUBLE_EQ(run_sw(p, params, ranks, 2), expected)
        << ranks << " ranks";
}

TEST(SmithWaterman, TrackMaxReportsLexSmallestArgmax) {
  // Two disjoint equal-scoring cores; the engine must report the
  // lexicographically smallest argmax deterministically.
  Problem p = smith_waterman("AACC", "AACC", 2.0, -1.0, -1.0, 2);
  tiling::TilingModel model(p.spec);
  engine::EngineOptions opt;
  opt.track_max = true;
  auto r = engine::run(model, sequence_params({"AACC", "AACC"}), p.kernel,
                       opt);
  EXPECT_DOUBLE_EQ(r.max_value, 8.0);
  EXPECT_EQ(r.max_point, (IntVec{0, 0}));
  auto r2 = engine::run(model, sequence_params({"AACC", "AACC"}), p.kernel,
                        opt);
  EXPECT_EQ(r.max_point, r2.max_point);  // deterministic across runs
}

TEST(SmithWaterman, RejectsNonsensicalScores) {
  EXPECT_THROW(smith_waterman("A", "A", -1.0, -1.0, -1.0), Error);
  EXPECT_THROW(smith_waterman("A", "A", 2.0, 1.0, -1.0), Error);
}

TEST(CoinChange, ClassicCases) {
  Problem p = coin_change({1, 5, 10, 25}, 8);
  EXPECT_DOUBLE_EQ(p.reference({0}), 0.0);
  EXPECT_DOUBLE_EQ(p.reference({6}), 2.0);    // 5 + 1
  EXPECT_DOUBLE_EQ(p.reference({30}), 2.0);   // 25 + 5
  EXPECT_DOUBLE_EQ(p.reference({63}), 6.0);   // 25+25+10+1+1+1
  EXPECT_DOUBLE_EQ(run_engine(p, {63}), 6.0);
  EXPECT_DOUBLE_EQ(run_engine(p, {63}, 2, 2), 6.0);
}

TEST(CoinChange, GreedyFailsOptimalDp) {
  // {1, 15, 16} at 30: greedy takes 16+1*14 = 15 coins, DP finds 15+15.
  Problem p = coin_change({1, 15, 16}, 4);
  EXPECT_DOUBLE_EQ(p.reference({30}), 2.0);
  EXPECT_DOUBLE_EQ(run_engine(p, {30}, 2, 1), 2.0);
}

TEST(CoinChange, UnreachableAmountsAreSentinel) {
  Problem p = coin_change({4, 6}, 4);
  EXPECT_DOUBLE_EQ(p.reference({7}), 1e18);   // odd amount unreachable
  EXPECT_DOUBLE_EQ(run_engine(p, {7}), 1e18);
  EXPECT_DOUBLE_EQ(p.reference({10}), 2.0);
  EXPECT_DOUBLE_EQ(run_engine(p, {10}), 2.0);
}

TEST(CoinChange, LongRangeDepsCrossSeveralTiles) {
  // Denomination 13 with tile width 4 reaches 3-4 tiles ahead.
  Problem p = coin_change({13, 1}, 4);
  tiling::TilingModel model(p.spec);
  Int max_offset = 0;
  for (const auto& e : model.edges())
    max_offset = std::max(max_offset, e.offset[0]);
  EXPECT_GE(max_offset, 3);
  EXPECT_DOUBLE_EQ(run_engine(p, {27}, 3, 2), p.reference({27}));
}

TEST(CoinChange, RejectsBadDenominations) {
  EXPECT_THROW(coin_change({}), Error);
  EXPECT_THROW(coin_change({0}), Error);
  EXPECT_THROW(coin_change({5, -2}), Error);
}

TEST(RandomDna, DeterministicAndWellFormed) {
  std::string a = random_dna(64, 42);
  EXPECT_EQ(a, random_dna(64, 42));
  EXPECT_NE(a, random_dna(64, 43));
  EXPECT_EQ(a.size(), 64u);
  for (char c : a) EXPECT_NE(std::string("ACGT").find(c), std::string::npos);
}

TEST(SpecsCarryGeneratorCode, CenterCodePresent) {
  // The paper-facing artifacts: every packaged problem ships center-loop
  // code referencing the generator's symbols.
  for (const auto& p :
       {bandit2(), bandit3(), bandit2_delay(),
        msa({"ACG", "ACT"}), lcs({"ACG", "ACT"})}) {
    EXPECT_NE(p.spec.code().center.find("V[loc"), std::string::npos)
        << p.spec.problem_name();
  }
}

}  // namespace
}  // namespace dpgen::problems
