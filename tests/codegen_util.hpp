#pragma once
// Shared helpers for tests that compile and run generated programs with
// the host toolchain.  The consuming CMake target must define
// DPGEN_CXX_COMPILER, DPGEN_SRC_DIR, DPGEN_LIB_RUNTIME, DPGEN_LIB_MINIMPI,
// DPGEN_LIB_OBS and DPGEN_LIB_SUPPORT.  Optionally:
//   * DPGEN_EXTRA_CXX_FLAGS — extra flags forwarded to every generated-
//     program compile (build flavours like the TSan pass must compile the
//     program with the same instrumentation the libraries were built
//     with, or the link fails);
//   * DPGEN_TEST_OPENMP=0 — drop -fopenmp/-DDPGEN_RUNTIME_USE_OPENMP
//     (flavours that disable OpenMP build the libraries without it, and
//     the generated program must match).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "support/str.hpp"
#include "support/vec.hpp"

#ifndef DPGEN_EXTRA_CXX_FLAGS
#define DPGEN_EXTRA_CXX_FLAGS ""
#endif
#ifndef DPGEN_TEST_OPENMP
#define DPGEN_TEST_OPENMP 1
#endif

namespace dpgen::codegen_test {

/// Runs a shell command, returning (exit status, combined output).
inline std::pair<int, std::string> run_command(const std::string& cmd) {
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (!pipe) return {-1, "popen failed"};
  std::string out;
  char buf[4096];
  while (std::size_t n = fread(buf, 1, sizeof buf, pipe)) out.append(buf, n);
  int status = pclose(pipe);
  return {status, out};
}

/// Extracts the value printed for the given coordinates.
inline double parse_result(const std::string& output, const IntVec& point) {
  std::string key = "RESULT (";
  for (std::size_t i = 0; i < point.size(); ++i)
    key += (i ? ", " : "") + std::to_string(point[i]);
  key += ") = ";
  auto pos = output.find(key);
  EXPECT_NE(pos, std::string::npos) << "missing '" << key << "' in:\n"
                                    << output;
  if (pos == std::string::npos) return 0.0;
  return std::strtod(output.c_str() + pos + key.size(), nullptr);
}

struct CompiledProgram {
  std::string binary;
  bool ok = false;
  std::string log;
};

/// Compiles a generated source warning-clean (-Wall -Wextra -Werror) with
/// OpenMP enabled (unless DPGEN_TEST_OPENMP=0) and the runtime libraries
/// linked in.  `opt_flags` replaces the default -O1 (vectorization tests
/// need -O3).
inline CompiledProgram compile_program(const std::string& src_path,
                                       const std::string& tag,
                                       const std::string& opt_flags = "-O1") {
  CompiledProgram out;
  out.binary = testing::TempDir() + "/dpgen_e2e_" + tag;
  std::string cmd = cat(
      DPGEN_CXX_COMPILER, " -std=c++20 ", opt_flags, " ",
      DPGEN_TEST_OPENMP ? "-fopenmp -DDPGEN_RUNTIME_USE_OPENMP " : "",
      DPGEN_EXTRA_CXX_FLAGS, " -Wall -Wextra -Werror ", "-I", DPGEN_SRC_DIR,
      " ", src_path, " ", DPGEN_LIB_RUNTIME, " ", DPGEN_LIB_MINIMPI, " ",
      DPGEN_LIB_OBS, " ", DPGEN_LIB_SUPPORT, " -lpthread -o ", out.binary);
  auto [status, log] = run_command(cmd);
  out.ok = (status == 0);
  out.log = log;
  return out;
}

}  // namespace dpgen::codegen_test
