// Reproduction regression tests: the paper's headline quantitative shapes
// (EXPERIMENTS.md) asserted at CI-friendly sizes, so refactoring cannot
// silently break the reproduction.  The bench binaries produce the full
// tables; these tests pin the conclusions.

#include <gtest/gtest.h>

#include "problems/problems.hpp"
#include "sim/cluster_sim.hpp"

namespace dpgen {
namespace {

spec::ProblemSpec grid_spec(Int width) {
  spec::ProblemSpec s;
  s.name("grid")
      .params({"N"})
      .vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .constraint("y >= 0")
      .constraint("y <= N")
      .dep("r1", {1, 0})
      .dep("r2", {0, 1})
      .load_balance({"x", "y"})
      .tile_widths({width, width})
      .center_code("V[loc] = 0.0;");
  return s;
}

TEST(Reproduction, Fig4EdgeMemoryShapes) {
  // Paper Fig. 4 / section V.B: column-major ~ n+1 buffered edges,
  // level-set ~ 2(n-1), on an n x n tile grid with one executor.
  for (Int n : {8, 16}) {
    tiling::TilingModel model(grid_spec(4));
    IntVec params{4 * n - 1};
    sim::ClusterConfig cfg;
    cfg.policy = runtime::PriorityPolicy::kColumnMajor;
    long long col = sim::simulate(model, params, cfg).peak_buffered_edges;
    cfg.policy = runtime::PriorityPolicy::kLevelSet;
    long long lvl = sim::simulate(model, params, cfg).peak_buffered_edges;
    EXPECT_NEAR(static_cast<double>(col), static_cast<double>(n + 1), 2.0);
    EXPECT_NEAR(static_cast<double>(lvl), static_cast<double>(2 * (n - 1)),
                3.0);
  }
}

TEST(Reproduction, Fig6SharedMemorySpeedup) {
  // Paper Fig. 6 / section VIII: speedup >= 22 on 24 cores for the 2-arm
  // bandit (22.35 in the paper).  Use a smaller-but-sufficient N.
  tiling::TilingModel model(problems::bandit2(8).spec);
  sim::ClusterConfig cfg;
  cfg.cores_per_node = 24;
  auto r = sim::simulate(model, {127}, cfg);
  EXPECT_GE(r.speedup(), 22.0);
  EXPECT_LE(r.speedup(), 24.0 + 1e-9);
}

TEST(Reproduction, Fig7WeakScalingEfficiency) {
  // Paper Fig. 7 / section VI: 2-arm bandit ~90% efficiency at 8 nodes
  // when sizes scale with nodes and time is normalised by locations.
  tiling::TilingModel model(problems::bandit2(8).spec);
  sim::ClusterConfig cfg;
  cfg.cores_per_node = 24;

  cfg.nodes = 1;
  auto one = sim::simulate(model, {116}, cfg);
  double norm1 = one.makespan / model.total_cells({116});

  cfg.nodes = 8;
  // ~8x the locations: C(N+4,4) scales as N^4, 116 * 8^(1/4) ~ 195.
  auto eight = sim::simulate(model, {195}, cfg);
  double norm8 = 8.0 * eight.makespan / model.total_cells({195});

  // The pipeline-fill overhead amortises with size: 0.77 at N=80, 0.85 at
  // N=100, 0.91 at the bench's N=116..196 (the paper's ~90%).
  double eff = norm1 / norm8;
  EXPECT_GE(eff, 0.88) << "weak-scaling efficiency dropped to " << eff;
  EXPECT_LE(eff, 1.05);
}

TEST(Reproduction, TileWidthCrossoverWithNodeCount) {
  // Paper section VI.C: under per-tile overhead + message latency, a
  // larger tile width wins on few nodes while pipeline starvation makes a
  // smaller width win at 8 nodes.
  auto makespan = [&](Int width, int nodes) {
    tiling::TilingModel model(problems::bandit3(width).spec);
    sim::ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.cores_per_node = 6;
    cfg.sec_per_cell = 2e-7;
    cfg.tile_overhead_sec = 2e-5;
    cfg.link_latency_sec = 2e-4;
    cfg.link_bandwidth_scalars = 1e8;
    return sim::simulate(model, {36}, cfg).makespan;
  };
  // One node: width 6 beats width 2 (overhead amortisation).
  EXPECT_LT(makespan(6, 1), makespan(2, 1));
  // Eight nodes: width 6 collapses against width 3 (starvation).
  EXPECT_LT(makespan(3, 8), makespan(6, 8));
}

TEST(Reproduction, SingleLbDimensionBalancesMuchWorse) {
  // Paper IV.J / Fig. 2: too few load-balance dimensions balance badly.
  auto imbalance = [&](int lbdims) {
    spec::ProblemSpec s;
    s.name("simp4").params({"N"}).vars({"a", "b", "c", "d"});
    for (const char* v : {"a", "b", "c", "d"})
      s.constraint(std::string(v) + " >= 0");
    s.constraint("a + b + c + d <= N");
    s.dep("r1", {1, 0, 0, 0}).dep("r2", {0, 1, 0, 0});
    s.dep("r3", {0, 0, 1, 0}).dep("r4", {0, 0, 0, 1});
    std::vector<std::string> lb{"a", "b", "c"};
    lb.resize(static_cast<std::size_t>(lbdims));
    s.load_balance(lb).tile_widths({4, 4, 4, 4});
    s.center_code("V[loc] = 0.0;");
    tiling::TilingModel model(std::move(s));
    return tiling::LoadBalancer(model, {47}, 8).imbalance();
  };
  double one = imbalance(1), two = imbalance(2);
  EXPECT_GT(one, 1.5);
  EXPECT_LT(two, 1.4);
  EXPECT_GT(one, two);
}

TEST(Reproduction, InitialTileScanIsSubPercentAtScale) {
  // Paper IV.K: the face scan touches O(n^(d-1)) candidates; at bandit2
  // N=72 the scan is already well below 1% of candidate-to-work ratio.
  tiling::TilingModel model(problems::bandit2(4).spec);
  IntVec params{72};
  Int candidates = model.for_each_initial_tile(params, [](const IntVec&) {});
  EXPECT_LT(static_cast<double>(candidates),
            0.01 * static_cast<double>(model.total_cells(params)));
}

TEST(Reproduction, PendingOnlyStorageOrderOfMagnitude) {
  // Paper V.B: live memory (peak buffered edge scalars + one tile buffer)
  // is an order of magnitude below the full iteration space.
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  IntVec params{48};
  engine::EngineOptions opt;
  opt.probes = {p.objective};
  auto result = engine::run(model, params, p.kernel, opt);
  long long live = result.rank_stats[0].table.peak_buffered_scalars +
                   model.buffer_size();
  EXPECT_GE(static_cast<double>(model.total_cells(params)) / live, 10.0);
}

}  // namespace
}  // namespace dpgen
