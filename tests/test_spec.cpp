// Unit tests for ProblemSpec validation and the text input-format parser.

#include <gtest/gtest.h>

#include "spec/parser.hpp"
#include "spec/problem_spec.hpp"

namespace dpgen::spec {
namespace {

ProblemSpec minimal_1d() {
  ProblemSpec s;
  s.name("line")
      .params({"N"})
      .vars({"x"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .dep("r1", {1})
      .tile_widths({4})
      .center_code("V[loc] = is_valid_r1 ? V[loc_r1] + 1.0 : 1.0;\n");
  return s;
}

TEST(SpecValidation, MinimalSpecValidates) {
  ProblemSpec s = minimal_1d();
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.dim(), 1);
  EXPECT_EQ(s.nparams(), 1);
  EXPECT_EQ(s.dep_signs(), std::vector<int>{1});
}

TEST(SpecValidation, NegativeDepsGiveNegativeSign) {
  ProblemSpec s;
  s.vars({"x"})
      .constraint("x >= 0")
      .constraint("x <= 9")
      .dep("r1", {-1})
      .tile_widths({3})
      .center_code("V[loc] = 0.0;");
  s.validate();
  EXPECT_EQ(s.dep_signs(), std::vector<int>{-1});
}

TEST(SpecValidation, MixedSignDimensionRejected) {
  ProblemSpec s;
  s.vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= 9")
      .constraint("y >= 0")
      .constraint("y <= 9")
      .dep("r1", {1, 0})
      .dep("r2", {-1, 1})
      .tile_widths({3, 3})
      .center_code("V[loc] = 0.0;");
  EXPECT_THROW(s.validate(), Error);
}

TEST(SpecValidation, ZeroDependencyRejected) {
  ProblemSpec s = minimal_1d();
  s.dep("bad", {0});
  EXPECT_THROW(s.validate(), Error);
}

TEST(SpecValidation, WrongArityDependencyRejected) {
  ProblemSpec s = minimal_1d();
  s.dep("bad", {1, 1});
  EXPECT_THROW(s.validate(), Error);
}

TEST(SpecValidation, DuplicateDepNameRejected) {
  ProblemSpec s = minimal_1d();
  s.dep("r1", {2});
  EXPECT_THROW(s.validate(), Error);
}

TEST(SpecValidation, MissingWidthsRejected) {
  ProblemSpec s;
  s.vars({"x"})
      .constraint("x >= 0")
      .constraint("x <= 5")
      .dep("r1", {1})
      .center_code("V[loc] = 0.0;");
  EXPECT_THROW(s.validate(), Error);
}

TEST(SpecValidation, NonPositiveWidthRejected) {
  ProblemSpec s = minimal_1d();
  s.tile_widths({0});
  EXPECT_THROW(s.validate(), Error);
}

TEST(SpecValidation, UnboundedSpaceRejected) {
  ProblemSpec s;
  s.vars({"x"})
      .constraint("x >= 0")  // no upper bound
      .dep("r1", {1})
      .tile_widths({4})
      .center_code("V[loc] = 0.0;");
  EXPECT_THROW(s.validate(), Error);
}

TEST(SpecValidation, ContradictorySpaceRejected) {
  ProblemSpec s;
  s.vars({"x"})
      .constraint("x >= 5")
      .constraint("x <= 2")
      .dep("r1", {1})
      .tile_widths({4})
      .center_code("V[loc] = 0.0;");
  EXPECT_THROW(s.validate(), Error);
}

TEST(SpecValidation, UnknownLoadBalanceDimRejected) {
  ProblemSpec s = minimal_1d();
  s.load_balance({"zz"});
  EXPECT_THROW(s.validate(), Error);
}

TEST(SpecValidation, DuplicateLoadBalanceDimRejected) {
  ProblemSpec s = minimal_1d();
  s.load_balance({"x", "x"});
  EXPECT_THROW(s.validate(), Error);
}

TEST(SpecValidation, MissingCenterCodeRejected) {
  ProblemSpec s;
  s.vars({"x"})
      .constraint("x >= 0")
      .constraint("x <= 5")
      .dep("r1", {1})
      .tile_widths({4});
  EXPECT_THROW(s.validate(), Error);
}

TEST(SpecValidation, UnknownVariableInConstraintRejected) {
  ProblemSpec s;
  s.vars({"x"});
  EXPECT_THROW(s.constraint("x + q <= 3"), Error);
}

constexpr const char* kBandit2Text = R"(
# The paper's running example: the 2-arm Bernoulli bandit.
problem bandit2
params N
vars s1 f1 s2 f2
array V double

constraints {
  s1 >= 0
  f1 >= 0
  s2 >= 0
  f2 >= 0
  # all pulls fit in the horizon
  s1 + f1 + s2 + f2 <= N
}

dep r1 = (1, 0, 0, 0)
dep r2 = (0, 1, 0, 0)
dep r3 = (0, 0, 1, 0)
dep r4 = (0, 0, 0, 1)

loadbalance s1 f1
tilewidths 8 8 8 8

global {{{
static const double dp_tuning = 1.0;
}}}

center {{{
V[loc] = is_valid_r1 ? V[loc_r1] : 0.0;
}}}
)";

TEST(SpecParser, ParsesFullBandit2Description) {
  ProblemSpec s = parse_spec(kBandit2Text);
  EXPECT_EQ(s.problem_name(), "bandit2");
  EXPECT_EQ(s.param_names(), (std::vector<std::string>{"N"}));
  EXPECT_EQ(s.var_names(), (std::vector<std::string>{"s1", "f1", "s2", "f2"}));
  EXPECT_EQ(s.array_name(), "V");
  EXPECT_EQ(s.scalar_type(), "double");
  EXPECT_EQ(s.deps().size(), 4u);
  EXPECT_EQ(s.deps()[2].name, "r3");
  EXPECT_EQ(s.deps()[2].vec, (IntVec{0, 0, 1, 0}));
  EXPECT_EQ(s.load_balance_dims(),
            (std::vector<std::string>{"s1", "f1"}));
  EXPECT_EQ(s.widths(), (IntVec{8, 8, 8, 8}));
  EXPECT_NE(s.code().global.find("dp_tuning"), std::string::npos);
  EXPECT_NE(s.code().center.find("V[loc_r1]"), std::string::npos);
  EXPECT_EQ(s.space().size(), 5);
}

TEST(SpecParser, ConstraintSectionMayPrecedeVars) {
  ProblemSpec s = parse_spec(R"(
problem p
constraints {
  x >= 0
  x <= N
}
params N
vars x
dep r1 = (1)
tilewidths 4
center {{{
V[loc] = 0.0;
}}}
)");
  EXPECT_EQ(s.space().size(), 2);
}

TEST(SpecParser, ReportsLineNumbers) {
  try {
    parse_spec("problem p\nvars x\nbogus directive\n");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(SpecParser, UnterminatedBlockRejected) {
  EXPECT_THROW(parse_spec("vars x\ncenter {{{\nV[loc] = 0.0;\n"), Error);
}

TEST(SpecParser, UnterminatedConstraintsRejected) {
  EXPECT_THROW(parse_spec("vars x\nconstraints {\n x >= 0\n"), Error);
}

TEST(SpecParser, BadVectorRejected) {
  EXPECT_THROW(parse_spec("vars x\ndep r1 = (1, q)\n"), Error);
  EXPECT_THROW(parse_spec("vars x\ndep r1 = 1\n"), Error);
}

TEST(SpecParser, BadTileWidthRejected) {
  EXPECT_THROW(parse_spec("vars x\ntilewidths four\n"), Error);
}

TEST(SpecParser, MissingVarsRejected) {
  EXPECT_THROW(parse_spec("params N\n"), Error);
}

TEST(SpecParser, ArrayNameAndTypeParsed) {
  ProblemSpec s = parse_spec(R"(
vars x
array cost float
constraints {
  x >= 0
  x <= 7
}
dep r1 = (1)
tilewidths 4
center {{{
cost[loc] = 0.0;
}}}
)");
  EXPECT_EQ(s.array_name(), "cost");
  EXPECT_EQ(s.scalar_type(), "float");
}

TEST(SpecParser, MissingFileThrows) {
  EXPECT_THROW(parse_spec_file("/nonexistent/path/spec.txt"), Error);
}

}  // namespace
}  // namespace dpgen::spec
