#pragma once
// The test-side JSON reader grew into src/support/json.hpp so the
// analyzer CLI could share it; this forwarder keeps the historical test
// include spelling working.

#include "support/json.hpp"
