// Tiling-model invariants checked across every packaged problem and
// several tile widths (parameterized property sweeps): counting
// consistency, edge/pack agreement, dependency symmetry, initial tiles,
// ghost-geometry bounds and mapping-function injectivity.

#include <gtest/gtest.h>

#include <set>

#include "problems/problems.hpp"
#include "tiling/model.hpp"

namespace dpgen::tiling {
namespace {

struct Workload {
  std::string name;
  spec::ProblemSpec spec;
  IntVec params;
};

std::vector<Workload> workloads(Int width) {
  std::vector<Workload> out;
  out.push_back({"bandit2", problems::bandit2(width).spec, {9}});
  out.push_back({"bandit2_delay", problems::bandit2_delay(width).spec, {6}});
  auto seqs = std::vector<std::string>{problems::random_dna(7, 1),
                                       problems::random_dna(8, 2)};
  out.push_back(
      {"msa2", problems::msa(seqs, width).spec, problems::sequence_params(seqs)});
  out.push_back({"coins", problems::coin_change({1, 5}, width).spec, {23}});
  out.push_back({"affine",
                 problems::align_affine("ACGTA", "AGTC", 1, 3, 1, width).spec,
                 problems::sequence_params({"ACGTA", "AGTC"})});
  return out;
}

class TilingInvariants : public ::testing::TestWithParam<Int> {};

TEST_P(TilingInvariants, CellCountsPartitionTheSpace) {
  for (auto& w : workloads(GetParam())) {
    TilingModel m(std::move(w.spec));
    Int sum = 0;
    std::set<IntVec> cells;
    m.for_each_tile(w.params, [&](const IntVec& t) {
      sum += m.cell_count(w.params, t);
      m.for_each_cell(w.params, t,
                      [&](const IntVec&, const IntVec& global) {
                        EXPECT_TRUE(cells.insert(global).second)
                            << w.name << ": cell visited twice";
                      });
    });
    EXPECT_EQ(sum, m.total_cells(w.params)) << w.name;
    EXPECT_EQ(static_cast<Int>(cells.size()), m.total_cells(w.params))
        << w.name;
  }
}

TEST_P(TilingInvariants, DependencyGraphIsConsistent) {
  for (auto& w : workloads(GetParam())) {
    TilingModel m(std::move(w.spec));
    m.for_each_tile(w.params, [&](const IntVec& t) {
      for (int e : m.deps_of(w.params, t)) {
        IntVec producer =
            vec_add(t, m.edges()[static_cast<std::size_t>(e)].offset);
        // The producer must exist, and the producer's consumer (t) too.
        EXPECT_TRUE(m.tile_in_space(w.params, producer)) << w.name;
      }
    });
  }
}

TEST_P(TilingInvariants, PackCountsNeverExceedCapacity) {
  for (auto& w : workloads(GetParam())) {
    TilingModel m(std::move(w.spec));
    m.for_each_tile(w.params, [&](const IntVec& t) {
      for (int e = 0; e < m.num_edges(); ++e) {
        Int n = 0;
        m.for_each_pack_cell(w.params, t, e, [&](const IntVec& j) {
          ++n;
          // Pack cells lie inside the producer's interior.
          for (std::size_t k = 0; k < j.size(); ++k) {
            EXPECT_GE(j[k], 0);
            EXPECT_LT(j[k], m.problem().widths()[k]);
          }
        });
        EXPECT_LE(n, m.edges()[static_cast<std::size_t>(e)].capacity)
            << w.name;
      }
    });
  }
}

TEST_P(TilingInvariants, MappingFunctionIsInjectiveOverBuffer) {
  for (auto& w : workloads(GetParam())) {
    TilingModel m(std::move(w.spec));
    // Interior + ghost coordinates map to distinct in-range indices.
    std::set<Int> seen;
    std::function<void(IntVec&, int)> rec = [&](IntVec& coord, int k) {
      if (k == m.dim()) {
        Int idx = m.local_index(coord);
        EXPECT_GE(idx, 0) << w.name;
        EXPECT_LT(idx, m.buffer_size()) << w.name;
        EXPECT_TRUE(seen.insert(idx).second) << w.name;
        return;
      }
      auto ks = static_cast<std::size_t>(k);
      for (Int i = -m.ghost_lo()[ks];
           i <= m.problem().widths()[ks] - 1 + m.ghost_hi()[ks]; ++i) {
        coord[ks] = i;
        rec(coord, k + 1);
      }
    };
    IntVec coord(static_cast<std::size_t>(m.dim()), 0);
    rec(coord, 0);
    EXPECT_EQ(static_cast<Int>(seen.size()), m.buffer_size()) << w.name;
  }
}

TEST_P(TilingInvariants, InitialTilesMatchBruteForce) {
  for (auto& w : workloads(GetParam())) {
    TilingModel m(std::move(w.spec));
    std::set<IntVec> expected;
    m.for_each_tile(w.params, [&](const IntVec& t) {
      if (m.deps_of(w.params, t).empty()) expected.insert(t);
    });
    std::set<IntVec> got;
    m.for_each_initial_tile(w.params,
                            [&](const IntVec& t) { got.insert(t); });
    EXPECT_EQ(got, expected) << w.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, TilingInvariants,
                         ::testing::Values<Int>(1, 2, 3, 5),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dpgen::tiling
