// Causal message tracing (ISSUE 10): per-message lifecycle records, the
// queueing-delay decomposition, per-link conservation accounting, Perfetto
// flow pairing, and the measured-vs-inferred critical-path cross-check.
//
// The end-to-end tests drive real 2-rank engine runs over the sharded tile
// table with worker threads — the same configuration scripts/check.sh
// re-runs under ThreadSanitizer, so the envelope stamps are exercised for
// data races, not just correctness.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "obs/analysis.hpp"
#include "obs/export.hpp"
#include "obs/msgtrace.hpp"
#include "obs/trace.hpp"
#include "problems/problems.hpp"
#include "sim/cluster_sim.hpp"
#include "support/json.hpp"
#include "support/json_schema.hpp"
#include "support/str.hpp"
#include "tiling/model.hpp"

namespace dpgen {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string repeat_abc(std::size_t n) {
  static const char alphabet[] = "acgtacgggtca";
  std::string s;
  for (std::size_t i = 0; i < n; ++i)
    s += alphabet[(i * 7 + i / 3) % (sizeof alphabet - 1)];
  return s;
}

/// Runs one bundled problem 2-rank x 2-thread with message tracing into
/// `mt_path` ("" = collect only) and returns the engine result.
engine::EngineResult traced_run(const problems::Problem& p,
                                const IntVec& params,
                                const std::string& mt_path,
                                const std::string& trace_path = "") {
  tiling::TilingModel model(p.spec);
  engine::EngineOptions opt;
  opt.ranks = 2;
  opt.threads = 2;
  opt.report_json_path = "-";  // analyzer on, no file
  opt.msgtrace_json_path = mt_path.empty() ? "-" : mt_path;
  opt.trace_json_path = trace_path;
  if (!p.objective.empty()) opt.probes = {p.objective};
  return engine::run(model, params, p.kernel, opt);
}

long long inum(const json::Value& v, const char* key) {
  return v.has(key) ? static_cast<long long>(v.at(key).as_number()) : 0;
}

// ---- ring mechanics -------------------------------------------------------

TEST(MsgTrace, RingOverflowCountsEveryDroppedRecord) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with DPGEN_TRACE=0";
  obs::MsgTracer& t = obs::MsgTracer::instance();
  t.clear();
  t.set_enabled(true);
  const std::uint64_t extra = 123;
  const std::uint64_t total = obs::MsgTracer::kRingCapacity + extra;
  for (std::uint64_t i = 0; i < total; ++i) {
    obs::MsgRecord r;
    r.seq = static_cast<std::int64_t>(i);
    r.src = 1;
    r.dst = 0;
    r.pack_ns = static_cast<std::int64_t>(i + 1);
    r.dispatch_ns = static_cast<std::int64_t>(i + 2);
    t.record(r);
  }
  t.set_enabled(false);
  const std::vector<obs::MsgRecord> kept = t.collect_all();
  EXPECT_EQ(kept.size(), obs::MsgTracer::kRingCapacity);
  EXPECT_EQ(t.dropped(), extra);
  // The ring keeps the newest records: the smallest surviving seq is
  // exactly the drop count.
  std::int64_t min_seq = kept.front().seq;
  for (const obs::MsgRecord& r : kept) min_seq = std::min(min_seq, r.seq);
  EXPECT_EQ(min_seq, static_cast<std::int64_t>(extra));
  t.clear();
  EXPECT_TRUE(t.collect_all().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(MsgTrace, DecompositionPartitionsEndToEndExactly) {
  obs::MsgRecord r;
  r.pack_ns = 100;
  r.send_ns = 130;
  r.admit_ns = 131;
  r.deliver_ns = 500;
  r.unpack_ns = 650;
  r.dispatch_ns = 700;
  const obs::MsgQueueing q = obs::decompose(r);
  EXPECT_EQ(q.pack_ns, 30);
  EXPECT_EQ(q.sender_blocked_ns, 1);
  EXPECT_EQ(q.queue_ns, 369);
  EXPECT_EQ(q.unpack_wait_ns, 150);
  EXPECT_EQ(q.dispatch_ns, 50);
  EXPECT_EQ(q.total(), r.dispatch_ns - r.pack_ns);

  // A malformed (non-monotone) record clamps segments at zero instead of
  // producing negative buckets.
  obs::MsgRecord bad = r;
  bad.admit_ns = 90;
  const obs::MsgQueueing qb = obs::decompose(bad);
  EXPECT_EQ(qb.sender_blocked_ns, 0);
  EXPECT_GE(qb.queue_ns, 0);
}

// ---- end-to-end engine runs ----------------------------------------------

TEST(MsgTrace, EngineRunStampsAreMonotoneAndConserved) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with DPGEN_TRACE=0";
  const std::string path = testing::TempDir() + "/mt_engine.json";
  problems::Problem p = problems::lcs({repeat_abc(96), repeat_abc(96)}, 16);
  auto result = traced_run(p, {96, 96}, path);
  // Envelope-only: the computed result is unchanged by tracing.
  EXPECT_NEAR(result.at(p.objective), p.reference({96, 96}), 1e-9);

  json::ValuePtr doc = json::parse(read_file(path));
  EXPECT_EQ(doc->at("schema").as_string(), "dpgen.msgtrace.v1");
  EXPECT_GT(inum(*doc, "messages"), 0);

  // Conservation: every assigned sequence number was delivered.
  const json::Value& c = doc->at("conservation");
  EXPECT_GT(inum(c, "total_sent"), 0);
  EXPECT_EQ(inum(c, "total_sent"), inum(c, "total_delivered"));
  EXPECT_EQ(inum(c, "unexplained_loss"), 0);
  EXPECT_TRUE(c.at("accounted").boolean);

  // Every record's stamps are monotone non-decreasing in lifecycle order,
  // and the aggregate decomposition sums records' end-to-end latencies.
  long long e2e = 0;
  for (const json::ValuePtr& r : doc->at("records").as_array()) {
    const long long stamps[] = {inum(*r, "pack_ns"),    inum(*r, "send_ns"),
                                inum(*r, "admit_ns"),   inum(*r, "deliver_ns"),
                                inum(*r, "unpack_ns"),  inum(*r, "dispatch_ns")};
    for (std::size_t i = 1; i < std::size(stamps); ++i)
      EXPECT_LE(stamps[i - 1], stamps[i]) << "stamp " << i;
    EXPECT_GE(inum(*r, "seq"), 0);
    EXPECT_GT(inum(*r, "bytes"), 0);
    e2e += stamps[5] - stamps[0];
  }
  ASSERT_EQ(inum(*doc, "records_truncated"), 0);
  EXPECT_EQ(e2e, inum(doc->at("queueing_ns"), "end_to_end"));

  // Per-link rows re-sum to the totals and each decomposition closes.
  long long sent = 0;
  for (const json::ValuePtr& link : doc->at("links").as_array()) {
    sent += inum(*link, "sent");
    const json::Value& q = link->at("queueing_ns");
    EXPECT_EQ(inum(q, "pack") + inum(q, "sender_blocked") +
                  inum(q, "queue") + inum(q, "unpack_wait") +
                  inum(q, "dispatch"),
              inum(q, "end_to_end"));
  }
  EXPECT_EQ(sent, inum(c, "total_sent"));

  // The document validates against its registered schema.
  json::ValuePtr schema = json::parse(read_file(DPGEN_MSGTRACE_SCHEMA));
  for (const std::string& e : json::validate(*schema, *doc))
    ADD_FAILURE() << e;
  std::remove(path.c_str());
}

TEST(MsgTrace, PerfettoFlowEventsPairAcrossRanks) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with DPGEN_TRACE=0";
  const std::string trace_path = testing::TempDir() + "/mt_trace.json";
  problems::Problem p =
      problems::edit_distance(repeat_abc(80), repeat_abc(80), 16);
  traced_run(p, {80, 80}, "", trace_path);

  json::ValuePtr doc = json::parse(read_file(trace_path));
  std::map<std::string, int> starts, finishes;
  for (const json::ValuePtr& ev : doc->at("traceEvents").as_array()) {
    if (!ev->has("ph")) continue;
    const std::string ph = ev->at("ph").as_string();
    if (ph != "s" && ph != "f") continue;
    ASSERT_TRUE(ev->has("id"));
    ASSERT_TRUE(ev->has("ts"));
    const std::string id = ev->at("id").as_string();
    if (ph == "s") ++starts[id];
    else ++finishes[id];
    if (ph == "f")
      EXPECT_EQ(ev->at("bp").as_string(), "e")
          << "flow finish must bind to the enclosing slice";
  }
  ASSERT_FALSE(starts.empty()) << "a 2-rank run must emit flow events";
  EXPECT_EQ(starts.size(), finishes.size());
  for (const auto& [id, n] : starts) {
    EXPECT_EQ(n, 1) << "duplicate flow start " << id;
    EXPECT_EQ(finishes.count(id), 1u) << "unpaired flow start " << id;
  }
  std::remove(trace_path.c_str());
}

// Acceptance criterion: on clean runs of >= 3 problem families, the
// measured (message-stamped) critical path agrees with the span-inferred
// one — length within 10%, per-phase attribution within 15 percentage
// points of the makespan.
TEST(MsgTrace, MeasuredPathAgreesWithInferredAcrossFamilies) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with DPGEN_TRACE=0";
  struct Family {
    const char* name;
    problems::Problem problem;
    IntVec params;
  };
  const std::string a = repeat_abc(96), b = repeat_abc(96);
  const std::vector<Family> families = {
      {"lcs", problems::lcs({a, b}, 16), {96, 96}},
      {"edit_distance", problems::edit_distance(a, b, 16), {96, 96}},
      {"smith_waterman", problems::smith_waterman(a, b), {96, 96}},
  };
  for (const Family& f : families) {
    SCOPED_TRACE(f.name);
    auto result = traced_run(f.problem, f.params, "");
    ASSERT_TRUE(result.report.has_value());
    const obs::AnalysisReport& r = *result.report;
    ASSERT_TRUE(r.measured_path_valid);
    ASSERT_GE(r.critical_path.size(), 2u);
    ASSERT_GE(r.measured_path.size(), 2u);

    const double inferred = static_cast<double>(r.critical_path.size());
    const double measured = static_cast<double>(r.measured_path.size());
    EXPECT_NEAR(measured / inferred, 1.0, 0.10)
        << "measured " << measured << " vs inferred " << inferred;

    ASSERT_GT(r.makespan_s, 0.0);
    const auto phase_fractions = [&](const obs::PhaseBreakdown& pb) {
      return std::vector<double>{
          pb.compute / r.makespan_s, pb.unpack / r.makespan_s,
          pb.pack / r.makespan_s,    pb.send / r.makespan_s,
          pb.blocked_send / r.makespan_s, pb.poll / r.makespan_s,
          pb.idle / r.makespan_s,    pb.barrier / r.makespan_s,
          pb.other / r.makespan_s};
    };
    const std::vector<double> fi = phase_fractions(r.path_attribution);
    const std::vector<double> fm = phase_fractions(r.measured_attribution);
    for (std::size_t i = 0; i < fi.size(); ++i)
      EXPECT_NEAR(fm[i], fi[i], 0.15) << "phase index " << i;

    // Both attributions explain (nearly all of) the same makespan.
    EXPECT_NEAR(r.measured_coverage, r.path_coverage, 0.15);
  }
}

TEST(MsgTrace, ReportQueueingSectionMatchesDocument) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with DPGEN_TRACE=0";
  const std::string path = testing::TempDir() + "/mt_vs_report.json";
  problems::Problem p = problems::lcs({repeat_abc(64), repeat_abc(64)}, 16);
  auto result = traced_run(p, {64, 64}, path);
  ASSERT_TRUE(result.report.has_value());
  const obs::AnalysisReport& r = *result.report;

  json::ValuePtr doc = json::parse(read_file(path));
  EXPECT_EQ(static_cast<long long>(r.msg_records), inum(*doc, "messages"));
  // Same records feed both documents, so the decompositions agree
  // bucket for bucket.
  const json::Value& q = doc->at("queueing_ns");
  EXPECT_EQ(r.queueing.pack_ns, inum(q, "pack"));
  EXPECT_EQ(r.queueing.sender_blocked_ns, inum(q, "sender_blocked"));
  EXPECT_EQ(r.queueing.queue_ns, inum(q, "queue"));
  EXPECT_EQ(r.queueing.unpack_wait_ns, inum(q, "unpack_wait"));
  EXPECT_EQ(r.queueing.dispatch_ns, inum(q, "dispatch"));
  EXPECT_EQ(r.queueing.total(), inum(q, "end_to_end"));
  std::remove(path.c_str());
}

// ---- simulator -----------------------------------------------------------

TEST(MsgTrace, SimulatedMessagesConserveLosslessly) {
  problems::Problem p = problems::lcs({repeat_abc(96), repeat_abc(96)}, 16);
  tiling::TilingModel model(p.spec);
  const std::string path = testing::TempDir() + "/mt_sim.json";
  sim::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.cores_per_node = 2;
  cfg.msgtrace_path = path;
  sim::SimResult res = sim::simulate(model, {96, 96}, cfg);
  ASSERT_FALSE(res.msg_records.empty());

  json::ValuePtr doc = json::parse(read_file(path));
  EXPECT_EQ(doc->at("source").as_string(), "sim");
  const json::Value& c = doc->at("conservation");
  EXPECT_EQ(inum(c, "total_sent"), inum(c, "total_delivered"));
  EXPECT_EQ(inum(c, "unexplained_loss"), 0);
  EXPECT_TRUE(c.at("accounted").boolean);
  EXPECT_EQ(inum(c, "total_sent"),
            static_cast<long long>(res.remote_messages));
  // DES stamps are monotone too, with link latency in the queue bucket.
  for (const obs::MsgRecord& m : res.msg_records) {
    EXPECT_LE(m.pack_ns, m.admit_ns);
    EXPECT_LE(m.admit_ns, m.deliver_ns);
    EXPECT_LE(m.deliver_ns, m.dispatch_ns);
    EXPECT_GT(m.deliver_ns - m.admit_ns, 0) << "modelled link latency";
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dpgen
