// Unit tests for the polyhedral layer: affine expressions, constraint
// systems, Fourier-Motzkin elimination, loop-bound synthesis, scanning and
// exact lattice counting.

#include <gtest/gtest.h>

#include <set>

#include "poly/count.hpp"
#include "support/str.hpp"
#include "poly/fm.hpp"
#include "poly/loopnest.hpp"
#include "poly/parse.hpp"
#include "poly/system.hpp"

namespace dpgen::poly {
namespace {

Vars xy() { return Vars({"x", "y"}); }

TEST(VarsTable, AddAndLookup) {
  Vars v;
  EXPECT_EQ(v.add("a"), 0);
  EXPECT_EQ(v.add("b"), 1);
  EXPECT_EQ(v.index_of("a"), 0);
  EXPECT_EQ(v.index_of("zz"), -1);
  EXPECT_EQ(v.require("b"), 1);
  EXPECT_THROW(v.require("zz"), Error);
  EXPECT_THROW(v.add("a"), Error);     // duplicate
  EXPECT_THROW(v.add("1bad"), Error);  // not an identifier
}

TEST(LinExprOps, EvalAndArithmetic) {
  Vars v = xy();
  LinExpr e = LinExpr::term(2, 0, 2) + LinExpr::term(2, 1, -1);  // 2x - y
  e.c = 3;
  EXPECT_EQ(e.eval({5, 4}), 2 * 5 - 4 + 3);
  LinExpr d = e * 2;
  EXPECT_EQ(d.eval({5, 4}), 2 * (2 * 5 - 4 + 3));
  EXPECT_EQ((-e).eval({5, 4}), -(2 * 5 - 4 + 3));
  EXPECT_EQ((e - e).eval({1, 1}), 0);
}

TEST(LinExprOps, ReduceGcd) {
  LinExpr e(2);
  e.set_coef(0, 4);
  e.set_coef(1, -6);
  e.c = 8;
  EXPECT_EQ(e.reduce_gcd(), 2);
  EXPECT_EQ(e.coef(0), 2);
  EXPECT_EQ(e.coef(1), -3);
  EXPECT_EQ(e.c, 4);
}

TEST(LinExprOps, ToString) {
  Vars v = xy();
  LinExpr e = LinExpr::term(2, 0, 2) - LinExpr::term(2, 1);
  e.c = -3;
  EXPECT_EQ(e.to_string(v), "2*x - y - 3");
  EXPECT_EQ(LinExpr(2, 0).to_string(v), "0");
  EXPECT_EQ(LinExpr(2, 7).to_string(v), "7");
  EXPECT_EQ((-LinExpr::term(2, 0)).to_string(v), "-x");
}

TEST(ParseExpr, Basics) {
  Vars v = xy();
  EXPECT_EQ(parse_expr("2*x - y + 3", v).eval({1, 1}), 4);
  EXPECT_EQ(parse_expr("x*2 + 1", v).eval({5, 0}), 11);
  EXPECT_EQ(parse_expr("-x + - y", v).eval({1, 2}), -3);
  EXPECT_EQ(parse_expr("7", v).eval({0, 0}), 7);
  EXPECT_THROW(parse_expr("x + z", v), Error);
  EXPECT_THROW(parse_expr("x +", v), Error);
  EXPECT_THROW(parse_expr("x 3", v), Error);
}

TEST(ParseConstraint, CanonicalForms) {
  Vars v = xy();
  // x <= y  ->  y - x >= 0
  Constraint c = parse_constraint("x <= y", v);
  EXPECT_EQ(c.rel, Rel::Ge);
  EXPECT_TRUE(c.e.eval({3, 3}) >= 0);
  EXPECT_TRUE(c.e.eval({4, 3}) < 0);

  // Strict: x < y  ->  y - x - 1 >= 0
  c = parse_constraint("x < y", v);
  EXPECT_TRUE(c.e.eval({2, 3}) >= 0);
  EXPECT_TRUE(c.e.eval({3, 3}) < 0);

  c = parse_constraint("x > y", v);
  EXPECT_TRUE(c.e.eval({4, 3}) >= 0);
  EXPECT_TRUE(c.e.eval({3, 3}) < 0);

  c = parse_constraint("x == 2*y", v);
  EXPECT_EQ(c.rel, Rel::Eq);
  EXPECT_EQ(c.e.eval({6, 3}), 0);
  EXPECT_NE(c.e.eval({5, 3}), 0);

  // Single '=' also accepted.
  EXPECT_EQ(parse_constraint("x = y", v).rel, Rel::Eq);

  EXPECT_THROW(parse_constraint("x + y", v), Error);
  EXPECT_THROW(parse_constraint("x <= y <= 3", v), Error);
}

System unit_square(Int n) {
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x >= 0", v));
  s.add(parse_constraint(cat("x <= ", n), v));
  s.add(parse_constraint("y >= 0", v));
  s.add(parse_constraint(cat("y <= ", n), v));
  return s;
}

TEST(SystemOps, Contains) {
  System s = unit_square(3);
  EXPECT_TRUE(s.contains({0, 0}));
  EXPECT_TRUE(s.contains({3, 3}));
  EXPECT_FALSE(s.contains({4, 0}));
  EXPECT_FALSE(s.contains({-1, 2}));
}

TEST(SystemOps, NormalizeTightensIntegerInequalities) {
  Vars v = xy();
  System s(v);
  // 2x - 3 >= 0 over Z means x >= 2, i.e. x - 2 >= 0 after tightening.
  s.add_ge(parse_expr("2*x - 3", v));
  s.normalize();
  // gcd of coefficients is 2 only when the constant participates; here
  // gcd(2)=2 over coeffs, constant floor(-3/2) = -2.
  const auto& c = s.constraints()[0];
  EXPECT_EQ(c.e.coef(0), 1);
  EXPECT_EQ(c.e.c, -2);
  EXPECT_FALSE(s.contains({1, 0}));
  EXPECT_TRUE(s.contains({2, 0}));
}

TEST(SystemOps, SimplifyDropsDuplicatesAndDominated) {
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x >= 0", v));
  s.add(parse_constraint("x >= 0", v));
  s.add(parse_constraint("x >= -5", v));  // dominated by x >= 0
  s.add_ge(LinExpr(2, 7));                // trivially true: 7 >= 0
  s.simplify();
  EXPECT_EQ(s.size(), 1);
  EXPECT_FALSE(s.known_infeasible());
}

TEST(SystemOps, SimplifyDetectsTrivialInfeasibility) {
  Vars v = xy();
  System s(v);
  s.add_ge(LinExpr(2, -1));  // -1 >= 0
  s.simplify();
  EXPECT_TRUE(s.known_infeasible());

  System s2(v);
  s2.add(parse_constraint("x == 1", v));
  s2.add(parse_constraint("x == 2", v));
  s2.simplify();
  EXPECT_TRUE(s2.known_infeasible());
}

TEST(SystemOps, NormalizeDetectsUnsatisfiableEquality) {
  Vars v = xy();
  System s(v);
  // 2x == 1 has no integer solution.
  s.add_eq(parse_expr("2*x - 1", v));
  s.normalize();
  EXPECT_TRUE(s.known_infeasible());
}

TEST(SystemOps, WithFixedFoldsConstant) {
  System s = unit_square(3);
  System f = s.with_fixed(0, 2);  // x := 2
  EXPECT_TRUE(f.contains({999, 0}));  // x coefficient is gone
  EXPECT_TRUE(f.contains({999, 3}));
  EXPECT_FALSE(f.contains({999, 4}));
  System g = s.with_fixed(0, 7);  // x := 7 violates x <= 3
  EXPECT_FALSE(g.contains({0, 0}));
}

TEST(FourierMotzkin, ProjectsTriangle) {
  // Triangle 0 <= x, 0 <= y, x + y <= 4; eliminating y must leave
  // 0 <= x <= 4.
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x >= 0", v));
  s.add(parse_constraint("y >= 0", v));
  s.add(parse_constraint("x + y <= 4", v));
  System p = s.eliminated(1);
  for (Int x = -2; x <= 6; ++x) {
    bool in = p.contains({x, 0});
    EXPECT_EQ(in, x >= 0 && x <= 4) << "x=" << x;
  }
  for (const auto& c : p.constraints()) EXPECT_EQ(c.e.coef(1), 0);
}

TEST(FourierMotzkin, UsesEqualityPivot) {
  // x == y + 1, 0 <= y <= 5; eliminating x keeps the y constraints intact.
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x == y + 1", v));
  s.add(parse_constraint("y >= 0", v));
  s.add(parse_constraint("y <= 5", v));
  s.add(parse_constraint("x <= 4", v));  // implies y <= 3
  System p = s.eliminated(0);
  for (Int y = -1; y <= 6; ++y)
    EXPECT_EQ(p.contains({0, y}), y >= 0 && y <= 3) << "y=" << y;
}

TEST(FourierMotzkin, EmptySystemStaysEmpty) {
  Vars v = xy();
  System s(v);
  System p = s.eliminated(0);
  EXPECT_EQ(p.size(), 0);
}

TEST(FourierMotzkin, DetectsInfeasibleAfterElimination) {
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x >= 3", v));
  s.add(parse_constraint("x <= 1", v));
  System p = s.eliminated(0);
  EXPECT_TRUE(p.known_infeasible());
}

TEST(FourierMotzkin, RationalProjectionIsConservative) {
  // 2x == y, 0 <= y <= 5. Projection onto y over the rationals is [0,5];
  // integer y=1 has no integer x but scanning handles that via empty inner
  // ranges, so the projection must still contain y=1.
  Vars v = xy();
  System s(v);
  s.add_eq(parse_expr("2*x - y", v));
  s.add(parse_constraint("y >= 0", v));
  s.add(parse_constraint("y <= 5", v));
  System p = s.eliminated(0);
  EXPECT_TRUE(p.contains({0, 1}));
  EXPECT_TRUE(p.contains({0, 4}));
  EXPECT_FALSE(p.contains({0, 6}));
}

TEST(FourierMotzkin, StatsReportPruning) {
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x >= 0", v));
  s.add(parse_constraint("x >= -1", v));  // redundant
  s.add(parse_constraint("x <= 4", v));
  s.add(parse_constraint("y >= 0", v));
  (void)s.eliminated(0);
  FmStats st = fm_last_stats();
  EXPECT_GE(st.produced, st.kept);
  EXPECT_GE(st.kept, 1);
}

TEST(TransformSystems, RewritesOverNewVars) {
  // Square 0<=x<=7 transformed by x = i + 4t over vars (t, i).
  Vars v({"x"});
  System s(v);
  s.add(parse_constraint("x >= 0", v));
  s.add(parse_constraint("x <= 7", v));
  Vars nv({"t", "i"});
  LinExpr image = LinExpr::term(2, 1) + LinExpr::term(2, 0, 4);  // i + 4t
  System out = transform(s, nv, {image});
  EXPECT_TRUE(out.contains({0, 0}));   // x=0
  EXPECT_TRUE(out.contains({1, 3}));   // x=7
  EXPECT_FALSE(out.contains({1, 4}));  // x=8
  EXPECT_FALSE(out.contains({-1, 3}));
}

std::vector<int> all_vars(const System& s) {
  std::vector<int> o;
  for (int i = 0; i < s.vars().size(); ++i) o.push_back(i);
  return o;
}

TEST(LoopNestScan, SquareVisitsAllPointsOnce) {
  System s = unit_square(2);
  LoopNest nest = LoopNest::build(s, all_vars(s));
  std::set<IntVec> seen;
  for_each_point(nest, IntVec{0, 0}, [&](const IntVec& p) {
    EXPECT_TRUE(seen.insert(p).second) << "duplicate point";
    EXPECT_TRUE(s.contains(p));
  });
  EXPECT_EQ(seen.size(), 9u);
}

TEST(LoopNestScan, TriangleBothOrders) {
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x >= 0", v));
  s.add(parse_constraint("y >= 0", v));
  s.add(parse_constraint("x + y <= 3", v));
  for (std::vector<int> order : {std::vector<int>{0, 1}, {1, 0}}) {
    LoopNest nest = LoopNest::build(s, order);
    int count = 0;
    for_each_point(nest, IntVec{0, 0}, [&](const IntVec& p) {
      EXPECT_TRUE(s.contains(p));
      ++count;
    });
    EXPECT_EQ(count, 10);  // C(3+2,2)
  }
}

TEST(LoopNestScan, RationalBoundsUseFloorCeil) {
  // 1 <= 2x <= 7  =>  x in {1, 2, 3}
  Vars v({"x"});
  System s(v);
  s.add(parse_constraint("2*x >= 1", v));
  s.add(parse_constraint("2*x <= 7", v));
  LoopNest nest = LoopNest::build(s, {0});
  auto [lo, hi] = nest.range(0, {0});
  EXPECT_EQ(lo, 1);
  EXPECT_EQ(hi, 3);
}

TEST(LoopNestScan, UnboundedDetected) {
  Vars v({"x"});
  System s(v);
  s.add(parse_constraint("x >= 0", v));
  LoopNest nest = LoopNest::build(s, {0});
  EXPECT_TRUE(nest.unbounded());
  EXPECT_THROW(nest.range(0, {0}), Error);
}

TEST(LoopNestScan, EqualityGivesDegenerateRange) {
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x == 2", v));
  s.add(parse_constraint("y >= 0", v));
  s.add(parse_constraint("y <= 1", v));
  LoopNest nest = LoopNest::build(s, {0, 1});
  auto [lo, hi] = nest.range(0, {0, 0});
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 2);
}

TEST(LoopNestScan, EmptyInnerRangesSkipped) {
  // y must equal 2x and be <= 3: points (0,0) and (1,2) only.
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x >= 0", v));
  s.add(parse_constraint("y == 2*x", v));
  s.add(parse_constraint("y <= 3", v));
  LoopNest nest = LoopNest::build(s, {0, 1});
  std::set<IntVec> seen;
  for_each_point(nest, IntVec{0, 0},
                 [&](const IntVec& p) { seen.insert(p); });
  EXPECT_EQ(seen, (std::set<IntVec>{{0, 0}, {1, 2}}));
}

Int binom(Int n, Int k) {
  Int r = 1;
  for (Int i = 1; i <= k; ++i) r = r * (n - k + i) / i;
  return r;
}

TEST(Counting, SimplexMatchesBinomial) {
  // |{x in Z^d : x_i >= 0, sum x_i <= N}| == C(N+d, d)
  for (int d = 1; d <= 4; ++d) {
    Vars v;
    for (int i = 0; i < d; ++i) v.add("x" + std::to_string(i));
    System s(v);
    LinExpr sum(d);
    for (int i = 0; i < d; ++i) {
      s.add_ge(LinExpr::term(d, i));
      sum += LinExpr::term(d, i);
    }
    for (Int n : {0, 1, 5, 9}) {
      System sn(v);
      for (const auto& c : s.constraints()) sn.add(c);
      LinExpr cap = -sum;
      cap.c = n;
      sn.add_ge(cap);  // N - sum >= 0
      LatticeCounter counter(sn, all_vars(sn));
      EXPECT_EQ(counter.count(IntVec(static_cast<std::size_t>(d), 0)),
                binom(n + d, d))
          << "d=" << d << " N=" << n;
    }
  }
}

TEST(Counting, EmptyPolytopeCountsZero) {
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x >= 3", v));
  s.add(parse_constraint("x <= 1", v));
  s.add(parse_constraint("y >= 0", v));
  s.add(parse_constraint("y <= 5", v));
  LatticeCounter counter(s, {0, 1});
  EXPECT_EQ(counter.count({0, 0}), 0);
}

TEST(Counting, FixedParameterViaSeed) {
  // Count points of 0 <= x <= N with N supplied in the seed.
  Vars v({"N", "x"});
  System s(v);
  s.add(parse_constraint("x >= 0", v));
  s.add(parse_constraint("x <= N", v));
  LatticeCounter counter(s, {1});
  EXPECT_EQ(counter.count({10, 0}), 11);
  EXPECT_EQ(counter.count({0, 0}), 1);
  EXPECT_EQ(counter.count({-3, 0}), 0);
}

/// Property check: scanning a random system must visit exactly the points
/// that brute-force membership filtering finds over the bounding box, with
/// no duplicates, in every scan order.
TEST(LoopNestScan, RandomSystemsMatchBruteForce) {
  std::uint64_t state = 12345;
  auto rnd = [&](Int lo, Int hi) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return lo + static_cast<Int>((state >> 33) %
                                 static_cast<std::uint64_t>(hi - lo + 1));
  };
  for (int trial = 0; trial < 30; ++trial) {
    const int d = static_cast<int>(rnd(1, 3));
    Vars v;
    for (int k = 0; k < d; ++k) v.add("x" + std::to_string(k));
    System s(v);
    const Int box = 6;
    for (int k = 0; k < d; ++k) {
      s.add_ge(LinExpr::term(d, k));                    // x_k >= 0
      LinExpr hi = -LinExpr::term(d, k);
      hi.c = box;
      s.add_ge(std::move(hi));                          // x_k <= box
    }
    // Up to two random extra constraints.
    for (int extra = 0; extra < 2; ++extra) {
      LinExpr e(d);
      for (int k = 0; k < d; ++k) e.set_coef(k, rnd(-2, 2));
      e.c = rnd(-3, 12);
      s.add_ge(std::move(e));
    }
    // Brute force over the box.
    std::set<IntVec> expected;
    IntVec p(static_cast<std::size_t>(d), 0);
    std::function<void(int)> enumerate = [&](int k) {
      if (k == d) {
        if (s.contains(p)) expected.insert(p);
        return;
      }
      for (Int x = 0; x <= box; ++x) {
        p[static_cast<std::size_t>(k)] = x;
        enumerate(k + 1);
      }
    };
    enumerate(0);
    // Every permutation of scan order must agree.
    std::vector<int> order;
    for (int k = 0; k < d; ++k) order.push_back(k);
    do {
      LoopNest nest = LoopNest::build(s, order);
      std::set<IntVec> seen;
      for_each_point(nest, IntVec(static_cast<std::size_t>(d), 0),
                     [&](const IntVec& pt) {
                       EXPECT_TRUE(seen.insert(pt).second)
                           << "duplicate " << vec_to_string(pt);
                       EXPECT_TRUE(s.contains(pt)) << vec_to_string(pt);
                     });
      EXPECT_EQ(seen, expected) << "trial " << trial;
      LatticeCounter counter(s, order);
      EXPECT_EQ(counter.count(IntVec(static_cast<std::size_t>(d), 0)),
                static_cast<Int>(expected.size()));
    } while (std::next_permutation(order.begin(), order.end()));
  }
}

TEST(RedundancyRemoval, DropsImpliedKeepsFacets) {
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x >= 0", v));
  s.add(parse_constraint("y >= 0", v));
  s.add(parse_constraint("x + y <= 10", v));
  s.add(parse_constraint("x <= 25", v));      // implied by the two above
  s.add(parse_constraint("2*x + y <= 30", v));  // implied as well
  s.remove_redundant();
  EXPECT_EQ(s.size(), 3);
  // Semantics preserved.
  EXPECT_TRUE(s.contains({10, 0}));
  EXPECT_FALSE(s.contains({11, 0}));
  EXPECT_FALSE(s.contains({-1, 3}));
}

TEST(RedundancyRemoval, KeepsEqualitiesUntouched) {
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x == y", v));
  s.add(parse_constraint("x >= 0", v));
  s.add(parse_constraint("x <= 5", v));
  s.add(parse_constraint("y <= 9", v));  // implied via x == y, x <= 5
  s.remove_redundant();
  int eqs = 0;
  for (const auto& c : s.constraints())
    if (c.rel == Rel::Eq) ++eqs;
  EXPECT_EQ(eqs, 1);
  EXPECT_EQ(s.size(), 3);
}

TEST(Rendering, ConstraintAndSystemToString) {
  Vars v = xy();
  System s(v);
  s.add(parse_constraint("x + y <= 4", v));
  s.add(parse_constraint("x == y", v));
  std::string text = s.to_string();
  EXPECT_NE(text.find(">= 0"), std::string::npos);
  EXPECT_NE(text.find("== 0"), std::string::npos);
  // Each rendered constraint parses back to an equivalent one.
  for (const auto& c : s.constraints()) {
    Constraint back = parse_constraint(c.to_string(v), v);
    EXPECT_EQ(back.rel, c.rel);
    for (Int x = -1; x <= 5; ++x)
      for (Int y = -1; y <= 5; ++y)
        EXPECT_EQ(back.e.eval({x, y}) >= 0, c.e.eval({x, y}) >= 0);
  }
}

TEST(Rendering, BoundValueMatchesDefinition) {
  // 3x - 7 >= 0 -> x >= ceil(7/3) = 3;  -2x + 9 >= 0 -> x <= floor(9/2)=4.
  Bound lo;
  lo.coef = 3;
  lo.rest = LinExpr(1, -7);
  EXPECT_EQ(lo.value({0}), 3);
  EXPECT_TRUE(lo.is_lower());
  Bound hi;
  hi.coef = -2;
  hi.rest = LinExpr(1, 9);
  EXPECT_EQ(hi.value({0}), 4);
  EXPECT_FALSE(hi.is_lower());
}

TEST(Counting, LatticeWithStride) {
  // 0 <= 3x <= 10: x in {0,1,2,3}
  Vars v({"x"});
  System s(v);
  s.add(parse_constraint("3*x >= 0", v));
  s.add(parse_constraint("3*x <= 10", v));
  LatticeCounter counter(s, {0});
  EXPECT_EQ(counter.count({0}), 4);
}

}  // namespace
}  // namespace dpgen::poly
