// CODEGEN — center-loop throughput of generated programs with and without
// the optimization pass pipeline (docs/codegen.md).  Two vectorization
// benchmark families (problems::trellis, problems::downhill) are generated,
// compiled with the host toolchain at plain -O3 (no -march=native: the
// contrast under test is "guarded loads stay scalar at the baseline ISA vs
// the canonicalized interior vectorizes", and AVX-512 masked loads would
// vectorize both sides), and run single-rank/single-thread with --report=.
//
// The measured quantity is compute-attributed seconds — the sum of
// load_balance.ranks[].measured_compute_s from the dpgen.report.v1 document
// — not wall clock: runtime setup and pack/unpack are identical across
// variants and would dilute the center-loop effect the passes target.  A
// trial asserts spans_dropped == 0 so the attribution is complete (the
// workloads are sized under the tracer ring capacity).
//
// scripts/check.sh gates the full/none cells_per_sec ratio of these benches
// (>= 1.3x on at least two families); dpgen-bench tracks their medians
// across commits like every other registered bench.

#include "bench_util.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "codegen/generator.hpp"
#include "codegen/passes.hpp"
#include "support/str.hpp"

#ifndef DPGEN_EXTRA_CXX_FLAGS
#define DPGEN_EXTRA_CXX_FLAGS ""
#endif
#ifndef DPGEN_TEST_OPENMP
#define DPGEN_TEST_OPENMP 1
#endif

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

/// Runs a shell command, returning (exit status, combined output).
std::pair<int, std::string> run_command(const std::string& cmd) {
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (!pipe) return {-1, "popen failed"};
  std::string out;
  char buf[4096];
  while (std::size_t n = fread(buf, 1, sizeof buf, pipe)) out.append(buf, n);
  int status = pclose(pipe);
  return {status, out};
}

/// Per-process scratch directory for generated sources, binaries and
/// report files.
const std::string& scratch_dir() {
  static const std::string dir = [] {
    const char* t = std::getenv("TMPDIR");
    std::string d = cat(t && *t ? t : "/tmp", "/dpgen_bench_codegen_",
                        static_cast<long>(::getpid()));
    ::mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

/// One benchmark family: the generator input plus the run geometry.  The
/// parameter values are chosen so the tile count stays under the tracer
/// ring capacity (spans_dropped must be 0 for honest attribution) while
/// the cell count is large enough to dominate per-tile overhead.
struct Family {
  const char* name;
  spec::ProblemSpec (*make_spec)();
  const char* run_args;  ///< positional parameter values
  double cells;          ///< locations computed by one run
};

spec::ProblemSpec trellis_spec() { return problems::trellis(4096).spec; }
spec::ProblemSpec downhill_spec() {
  return problems::downhill(16, 512).spec;
}

const Family kFamilies[] = {
    // 64 x 262144 field, strip tiles {1, 4096}: 4096 tiles.
    {"trellis", trellis_spec, "63 262143", 64.0 * 262144.0},
    // 256 x 131072 field, square-ish tiles {16, 512}: 4096 tiles.
    {"downhill", downhill_spec, "255 131071", 256.0 * 131072.0},
};

/// Generates and compiles one (family, passes) variant, caching the binary
/// for the repeated trials dpgen-bench runs.  Throws with the compiler log
/// on failure so the runner fails loudly instead of timing a stale binary.
const std::string& variant_binary(const Family& fam, bool full) {
  static std::map<std::string, std::string> cache;
  const std::string key = cat(fam.name, full ? "_full" : "_none");
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  tiling::TilingModel model(fam.make_spec());
  codegen::GenOptions opt;
  if (full) opt.passes = codegen::PassPipeline::parse("full");
  const std::string src = cat(scratch_dir(), "/", key, ".cpp");
  codegen::write_program(model, src, opt);

  const std::string binary = cat(scratch_dir(), "/", key);
  const std::string cmd = cat(
      DPGEN_CXX_COMPILER, " -std=c++20 -O3 ",
      DPGEN_TEST_OPENMP ? "-fopenmp -DDPGEN_RUNTIME_USE_OPENMP " : "",
      DPGEN_EXTRA_CXX_FLAGS, " -I", DPGEN_SRC_DIR, " ", src, " ",
      DPGEN_LIB_RUNTIME, " ", DPGEN_LIB_MINIMPI, " ", DPGEN_LIB_OBS, " ",
      DPGEN_LIB_SUPPORT, " -lpthread -o ", binary);
  auto [status, log] = run_command(cmd);
  if (status != 0)
    throw std::runtime_error(cat("codegen bench: compile of ", key,
                                 " failed:\n", log));
  return cache.emplace(key, binary).first->second;
}

/// One measured trial: run the variant with a report, return the
/// compute-attributed seconds from the dpgen.report.v1 document.
obs::BenchSample run_variant(const Family& fam, bool full) {
  const std::string& binary = variant_binary(fam, full);
  const std::string report =
      cat(scratch_dir(), "/", fam.name, full ? "_full" : "_none", ".json");
  auto [status, out] = run_command(cat(
      binary, " ", fam.run_args, " --ranks=1 --threads=1 --report=", report));
  if (status != 0)
    throw std::runtime_error(cat("codegen bench: run of ", fam.name,
                                 " failed:\n", out));

  std::ifstream f(report);
  std::stringstream ss;
  ss << f.rdbuf();
  json::ValuePtr doc = json::parse(ss.str());
  if (doc->at("spans_dropped").as_number() != 0.0)
    throw std::runtime_error(
        cat("codegen bench: ", fam.name, " dropped spans; compute ",
            "attribution would be biased (shrink the workload)"));
  double compute_s = 0.0;
  for (const auto& rank : doc->at("load_balance").at("ranks").as_array())
    compute_s += rank->at("measured_compute_s").as_number();

  obs::BenchSample s;
  s.seconds = compute_s;
  s.metrics = {{"cells", fam.cells},
               {"cells_per_sec",
                compute_s > 0 ? fam.cells / compute_s : 0.0}};
  return s;
}

[[maybe_unused]] const bool registered = [] {
  for (const Family& fam : kFamilies) {
    register_bench(cat("codegen/", fam.name, "_none"),
                   [&fam] { return run_variant(fam, false); });
    register_bench(cat("codegen/", fam.name, "_full"),
                   [&fam] { return run_variant(fam, true); });
  }
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void codegen_table() {
  header("CODEGEN",
         "generated-program center-loop throughput, pass pipeline off/on");
  std::printf("%-10s %-8s %-12s %-12s %-14s %-8s\n", "family", "passes",
              "cells", "compute_s", "cells_per_s", "ratio");
  for (const Family& fam : kFamilies) {
    double rate[2] = {0.0, 0.0};
    for (int full = 0; full <= 1; ++full) {
      obs::BenchSample best;
      for (int rep = 0; rep < 3; ++rep) {
        obs::BenchSample s = run_variant(fam, full != 0);
        if (rep == 0 || s.seconds < best.seconds) best = s;
      }
      rate[full] = best.seconds > 0 ? fam.cells / best.seconds : 0.0;
      const char* passes = full ? "full" : "none";
      std::printf("%-10s %-8s %-12.0f %-12.5f %-14.0f %-8s\n", fam.name,
                  passes, fam.cells, best.seconds, rate[full],
                  full ? "" : "-");
      json_record("codegen", cat(fam.name, "/", passes), best.seconds,
                  {{"cells", fam.cells}, {"cells_per_sec", rate[full]}});
    }
    if (rate[0] > 0)
      std::printf("%-10s %-8s %-12s %-12s %-14s %-8.2f\n", fam.name,
                  "ratio", "", "", "", rate[1] / rate[0]);
  }
  std::printf("\n");
}

/// Emission cost of the generator itself (not the generated program):
/// pass-free vs full-pipeline source text for the trellis family.
void BM_WriteProgram(benchmark::State& state) {
  tiling::TilingModel model(trellis_spec());
  codegen::GenOptions opt;
  if (state.range(0))
    opt.passes = codegen::PassPipeline::parse("full");
  const std::string path = cat(scratch_dir(), "/bm_write.cpp");
  for (auto _ : state) codegen::write_program(model, path, opt);
}
BENCHMARK(BM_WriteProgram)->Arg(0)->Arg(1);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  dpgen::benchutil::parse_json_flag(&argc, argv);
  codegen_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dpgen::benchutil::JsonSink::instance().flush();
  return 0;
}
#endif
