// FIG4 — paper Figure 4 / section V.B: peak buffered tile edges under the
// column-major priority versus the level-set priority.
//
// Claims reproduced:
//   * column-major order on an n x n tile grid buffers ~n+1 edges,
//   * level-set order buffers ~2(n-1) edges,
//   * in d dimensions the level-set order costs up to ~d times the memory,
//   * storing only pending tiles keeps live tiles O(n^(d-1)) of Theta(n^d).

#include "bench_util.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

[[maybe_unused]] const bool registered = [] {
  register_bench("fig4/sim_grid_n16_column", [] {
    tiling::TilingModel model(grid_spec(4));
    IntVec params{4 * 16 - 1};
    sim::ClusterConfig cfg;
    cfg.policy = runtime::PriorityPolicy::kColumnMajor;
    const auto t0 = std::chrono::steady_clock::now();
    auto r = sim::simulate(model, params, cfg);
    obs::BenchSample s;
    s.seconds = seconds_since(t0);
    s.metrics = {{"peak_buffered_edges",
                  static_cast<double>(r.peak_buffered_edges)},
                 {"tiles", static_cast<double>(r.tiles)}};
    return s;
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void fig4_table() {
  header("FIG4",
         "peak buffered edges: column-major vs level-set priority, 1 core");
  std::printf("%-8s %-8s %-12s %-12s %-10s %-10s\n", "space", "n", "column",
              "levelset", "paper_col", "paper_lvl");
  for (Int n : {5, 8, 16, 32}) {
    tiling::TilingModel model(grid_spec(4));
    IntVec params{4 * n - 1};
    sim::ClusterConfig cfg;
    cfg.policy = runtime::PriorityPolicy::kColumnMajor;
    auto col = sim::simulate(model, params, cfg);
    cfg.policy = runtime::PriorityPolicy::kLevelSet;
    auto lvl = sim::simulate(model, params, cfg);
    std::printf("%-8s %-8lld %-12lld %-12lld %-10lld %-10lld\n", "grid2d",
                static_cast<long long>(n), col.peak_buffered_edges,
                lvl.peak_buffered_edges, static_cast<long long>(n + 1),
                static_cast<long long>(2 * (n - 1)));
    json_record("fig4", "grid2d/n=" + std::to_string(n) + "/policy=column",
                col.makespan,
                {{"peak_buffered_edges",
                  static_cast<double>(col.peak_buffered_edges)}});
    json_record("fig4", "grid2d/n=" + std::to_string(n) + "/policy=level",
                lvl.makespan,
                {{"peak_buffered_edges",
                  static_cast<double>(lvl.peak_buffered_edges)}});
  }
  // Higher-dimensional spaces: the level-set / column-major memory ratio
  // approaches ~d (section V.B).
  std::printf("\n%-8s %-8s %-12s %-12s %-8s\n", "space", "N", "column",
              "levelset", "ratio");
  for (int d : {2, 3, 4}) {
    tiling::TilingModel model(simplex_spec(d, 3, d));
    IntVec params{3 * 10 - 1};
    sim::ClusterConfig cfg;
    cfg.policy = runtime::PriorityPolicy::kColumnMajor;
    auto col = sim::simulate(model, params, cfg);
    cfg.policy = runtime::PriorityPolicy::kLevelSet;
    auto lvl = sim::simulate(model, params, cfg);
    std::printf("%-8s %-8lld %-12lld %-12lld %-8.2f\n",
                ("simp" + std::to_string(d)).c_str(),
                static_cast<long long>(params[0]), col.peak_buffered_edges,
                lvl.peak_buffered_edges,
                static_cast<double>(lvl.peak_buffered_edges) /
                    static_cast<double>(col.peak_buffered_edges));
    json_record("fig4", "simp" + std::to_string(d) + "/ratio", col.makespan,
                {{"column", static_cast<double>(col.peak_buffered_edges)},
                 {"levelset", static_cast<double>(lvl.peak_buffered_edges)},
                 {"ratio", static_cast<double>(lvl.peak_buffered_edges) /
                               static_cast<double>(col.peak_buffered_edges)}});
  }
  std::printf("\n");
}

void BM_SimulateGridColumnMajor(benchmark::State& state) {
  tiling::TilingModel model(grid_spec(4));
  IntVec params{4 * state.range(0) - 1};
  sim::ClusterConfig cfg;
  for (auto _ : state) {
    auto r = sim::simulate(model, params, cfg);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_SimulateGridColumnMajor)->Arg(8)->Arg(16)->Arg(32);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  dpgen::benchutil::parse_json_flag(&argc, argv);
  fig4_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dpgen::benchutil::JsonSink::instance().flush();
  return 0;
}
#endif
