// FIG7 — paper Figure 7 / section VI: weak scaling across MPI nodes.
// Problem sizes grow with the node count so locations per node stay about
// constant; the time is normalised by the actual location count before
// computing efficiency (exactly the paper's methodology).  The paper
// reports ~90% efficiency for the 2-arm bandit at 8 nodes (24 cores each)
// and "fairly good" scaling for most problems.

#include "bench_util.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

#ifdef DPGEN_BENCH_STANDALONE
struct Workload {
  const char* name;
  spec::ProblemSpec spec;
  Int base_cells;  // target locations for 1 node
};

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  w.push_back({"bandit2", problems::bandit2(8).spec, 8'000'000});
  w.push_back({"bandit3", problems::bandit3(6).spec, 8'000'000});
  w.push_back({"grid2d", grid_spec(8), 4'000'000});
  return w;
}
#endif  // DPGEN_BENCH_STANDALONE

[[maybe_unused]] const bool registered = [] {
  register_bench("fig7/sim_bandit2_nodes4", [] {
    tiling::TilingModel model(problems::bandit2(8).spec);
    Int n = size_for_cells(model, 1'000'000);
    sim::ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.cores_per_node = 24;
    const auto t0 = std::chrono::steady_clock::now();
    auto r = sim::simulate(model, {n}, cfg);
    obs::BenchSample s;
    s.seconds = seconds_since(t0);
    s.metrics = {{"cells", static_cast<double>(model.total_cells({n}))},
                 {"tiles", static_cast<double>(r.tiles)},
                 {"remote_messages",
                  static_cast<double>(r.remote_messages)}};
    return s;
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void fig7_table() {
  header("FIG7",
         "weak scaling across nodes (24 cores each), time normalised by "
         "locations");
  std::printf("%-10s %-7s %-10s %-14s %-12s %-10s\n", "problem", "nodes",
              "N", "cells", "ns_per_cell", "eff");
  for (auto& wl : workloads()) {
    tiling::TilingModel model(wl.spec);
    double base_norm = 0.0;
    for (int nodes : {1, 2, 4, 8}) {
      IntVec probe_params{0};
      Int n = size_for_cells(model, wl.base_cells * nodes);
      IntVec params{n};
      Int cells = model.total_cells(params);
      sim::ClusterConfig cfg;
      cfg.nodes = nodes;
      cfg.cores_per_node = 24;
      auto r = sim::simulate(model, params, cfg);
      // Per-node-normalised time per location: with perfect weak scaling
      // every node processes its (equal) share in the same time, so
      // nodes * makespan / cells stays constant.
      double norm = static_cast<double>(nodes) * r.makespan /
                    static_cast<double>(cells);
      if (nodes == 1) base_norm = norm;
      double eff = base_norm / norm;
      std::printf("%-10s %-7d %-10lld %-14lld %-12.4f %-10.3f\n", wl.name,
                  nodes, static_cast<long long>(n),
                  static_cast<long long>(cells), norm * 1e9, eff);
      json_record("fig7",
                  std::string(wl.name) + "/nodes=" + std::to_string(nodes),
                  r.makespan,
                  {{"ns_per_cell", norm * 1e9},
                   {"efficiency", eff},
                   {"cells", static_cast<double>(cells)},
                   {"remote_messages",
                    static_cast<double>(r.remote_messages)}});
      (void)probe_params;
    }
  }
  std::printf(
      "# paper: 2-arm bandit ~90%% at 8 nodes vs 1 node; combined "
      "~84%% on 192 cores (with ~93%% single-node OpenMP efficiency)\n\n");
}

void BM_WeakScalePoint(benchmark::State& state) {
  tiling::TilingModel model(problems::bandit2(8).spec);
  Int n = size_for_cells(model, 1'000'000);
  sim::ClusterConfig cfg;
  cfg.nodes = static_cast<int>(state.range(0));
  cfg.cores_per_node = 24;
  for (auto _ : state) {
    auto r = sim::simulate(model, {n}, cfg);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_WeakScalePoint)->Arg(1)->Arg(4)->Arg(8);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  dpgen::benchutil::parse_json_flag(&argc, argv);
  fig7_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dpgen::benchutil::JsonSink::instance().flush();
  return 0;
}
#endif
