// ANALYSIS — analyzer throughput on synthetic traces: how fast
// obs::analyze() turns a span set into a report (critical path + per-rank
// attribution + comm matrix).  The report runs once per traced execution,
// so the bar is "negligible next to the run it describes": millions of
// spans per second, not thousands.  The table sweeps trace sizes; the
// microbenchmarks pin the per-span cost for regression tracking.

#include "bench_util.hpp"

#include <chrono>

#include "obs/analysis.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

/// A deterministic n x n wavefront trace over `ranks` ranks: each tile
/// executes on rank (i % ranks) along anti-diagonal d = i + j, preceded
/// by a pack and an idle stretch on the same track — the shape a real
/// grid-DP run produces, without the run.
obs::AnalysisInput synthetic_trace(Int n, int ranks) {
  obs::AnalysisInput in;
  in.source = "trace";
  in.problem = "synthetic";
  in.nranks = ranks;
  in.edge_offsets = {{-1, 0}, {0, -1}};
  in.predicted_work.assign(static_cast<std::size_t>(ranks), 1.0);
  const std::int64_t kExec = 800, kPack = 100, kSlot = 1000;
  in.spans.reserve(static_cast<std::size_t>(3 * n * n));
  for (Int i = 0; i < n; ++i) {
    for (Int j = 0; j < n; ++j) {
      const int rank = static_cast<int>(i % ranks);
      const std::int64_t start = (i + j) * kSlot;
      obs::Span s;
      s.rank = static_cast<std::int16_t>(rank);
      s.thread = 0;
      s.ncoord = 2;
      s.coord[0] = static_cast<std::int32_t>(i);
      s.coord[1] = static_cast<std::int32_t>(j);
      s.phase = obs::Phase::kTileExecute;
      s.start_ns = start;
      s.end_ns = start + kExec;
      in.spans.push_back(s);
      obs::Span pack;
      pack.rank = s.rank;
      pack.thread = 0;
      pack.phase = obs::Phase::kPack;
      pack.start_ns = start + kExec;
      pack.end_ns = start + kExec + kPack;
      in.spans.push_back(pack);
      obs::Span idle;
      idle.rank = s.rank;
      idle.thread = 0;
      idle.phase = obs::Phase::kIdle;
      idle.start_ns = start + kExec + kPack;
      idle.end_ns = start + kSlot;
      in.spans.push_back(idle);
    }
  }
  in.bytes_matrix.assign(static_cast<std::size_t>(ranks),
                         std::vector<std::uint64_t>(
                             static_cast<std::size_t>(ranks), 64));
  in.messages_matrix = in.bytes_matrix;
  return in;
}

[[maybe_unused]] const bool registered = [] {
  register_bench("analysis/grid64_r4", [] {
    obs::AnalysisInput in = synthetic_trace(64, 4);
    const auto t0 = std::chrono::steady_clock::now();
    obs::AnalysisReport report = obs::analyze(in);
    obs::BenchSample s;
    s.seconds = seconds_since(t0);
    s.metrics = {
        {"spans", static_cast<double>(in.spans.size())},
        {"spans_per_s",
         s.seconds > 0 ? static_cast<double>(in.spans.size()) / s.seconds
                       : 0.0},
        {"path_len", static_cast<double>(report.critical_path.size())}};
    return s;
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void analysis_table() {
  header("ANALYSIS", "obs::analyze() throughput on synthetic traces");
  std::printf("%-14s %-10s %-10s %-12s %-14s %-10s\n", "config", "spans",
              "path_len", "seconds", "spans_per_s", "coverage");
  struct Config {
    const char* name;
    Int n;
    int ranks;
  };
  const Config configs[] = {
      {"grid32/r2", 32, 2},
      {"grid64/r4", 64, 4},
      {"grid128/r8", 128, 8},
  };
  for (const auto& cfg : configs) {
    obs::AnalysisInput in = synthetic_trace(cfg.n, cfg.ranks);
    (void)obs::analyze(in);  // warm-up
    double best = 0.0;
    obs::AnalysisReport report;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      report = obs::analyze(in);
      const double sec = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
      if (best == 0.0 || sec < best) best = sec;
    }
    const double sps =
        best > 0 ? static_cast<double>(in.spans.size()) / best : 0.0;
    std::printf("%-14s %-10zu %-10zu %-12.5f %-14.0f %-10.4f\n", cfg.name,
                in.spans.size(), report.critical_path.size(), best, sps,
                report.path_coverage);
    json_record("analysis", cfg.name, best,
                {{"spans", static_cast<double>(in.spans.size())},
                 {"path_len",
                  static_cast<double>(report.critical_path.size())},
                 {"spans_per_s", sps},
                 {"coverage", report.path_coverage}});
  }
  std::printf("\n");
}

void BM_Analyze(benchmark::State& state) {
  const Int n = state.range(0);
  obs::AnalysisInput in = synthetic_trace(n, 4);
  for (auto _ : state) {
    auto report = obs::analyze(in);
    benchmark::DoNotOptimize(report.makespan_s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(in.spans.size()));
}
BENCHMARK(BM_Analyze)->Arg(16)->Arg(64);

void BM_ReportJson(benchmark::State& state) {
  obs::AnalysisReport report = obs::analyze(synthetic_trace(32, 4));
  for (auto _ : state) {
    std::string out = obs::report_json(report);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ReportJson);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  dpgen::benchutil::parse_json_flag(&argc, argv);
  analysis_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dpgen::benchutil::JsonSink::instance().flush();
  return 0;
}
#endif
