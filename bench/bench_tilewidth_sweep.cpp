// TILEW — paper section VI.C: tile-width sensitivity.
//
// Claims reproduced: the tile size materially affects performance; large
// tiles cause pipeline starvation across nodes (delays compound along the
// load-balance chain), so the best width shrinks as the node count grows —
// for the 3-arm bandit a large width (15) was best at <= 4 nodes while
// smaller tiles win at 8 nodes.

#include "bench_util.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

[[maybe_unused]] const bool registered = [] {
  register_bench("tilew/sim_bandit3_w4_nodes4", [] {
    tiling::TilingModel model(problems::bandit3(4).spec);
    sim::ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.cores_per_node = 6;
    const auto t0 = std::chrono::steady_clock::now();
    auto r = sim::simulate(model, {30}, cfg);
    obs::BenchSample s;
    s.seconds = seconds_since(t0);
    s.metrics = {{"tiles", static_cast<double>(r.tiles)},
                 {"remote_messages",
                  static_cast<double>(r.remote_messages)}};
    return s;
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void tilew_table() {
  header("TILEW", "3-arm-bandit makespan vs tile width and node count");
  const Int n = 45;
  std::printf("%-7s", "width");
  for (int nodes : {1, 4, 8}) std::printf(" %-14s", ("nodes=" + std::to_string(nodes)).c_str());
  std::printf("\n");

  // Machine model where the paper's trade-off lives: cheap cells, a real
  // per-tile cost (allocation/unpack/scheduling) and a real per-message
  // latency.  Small tiles pay overhead and message latency; large tiles
  // starve the inter-node pipeline (section VI.C).
  std::vector<Int> widths{2, 3, 4, 6, 8, 10, 15};
  std::vector<std::vector<double>> makespans(widths.size());
  for (std::size_t wi = 0; wi < widths.size(); ++wi) {
    tiling::TilingModel model(problems::bandit3(widths[wi]).spec);
    for (int nodes : {1, 4, 8}) {
      sim::ClusterConfig cfg;
      cfg.nodes = nodes;
      cfg.cores_per_node = 6;
      cfg.sec_per_cell = 2e-7;
      cfg.tile_overhead_sec = 2e-5;
      cfg.link_latency_sec = 2e-4;
      cfg.link_bandwidth_scalars = 1e8;
      auto r = sim::simulate(model, {n}, cfg);
      makespans[wi].push_back(r.makespan);
    }
  }
  std::vector<std::size_t> best(3, 0);
  for (std::size_t wi = 0; wi < widths.size(); ++wi) {
    std::printf("%-7lld", static_cast<long long>(widths[wi]));
    for (std::size_t c = 0; c < 3; ++c) {
      std::printf(" %-14.4f", makespans[wi][c]);
      if (makespans[wi][c] < makespans[best[c]][c]) best[c] = wi;
    }
    std::printf("\n");
  }
  std::printf("best:  ");
  for (std::size_t c = 0; c < 3; ++c)
    std::printf(" width=%-8lld", static_cast<long long>(widths[best[c]]));
  std::printf("\n");
  std::printf(
      "# paper: width 15 gave better throughput at <= 4 nodes; at 8 nodes "
      "large tiles starve the pipeline and smaller tiles win\n\n");
}

void BM_SimulateBandit3Width(benchmark::State& state) {
  tiling::TilingModel model(
      problems::bandit3(static_cast<Int>(state.range(0))).spec);
  sim::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.cores_per_node = 6;
  for (auto _ : state) {
    auto r = sim::simulate(model, {30}, cfg);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_SimulateBandit3Width)->Arg(4)->Arg(10);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  tilew_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
#endif
