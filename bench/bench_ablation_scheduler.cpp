// ABL — ablations of the runtime design choices on real (engine) runs:
//   * priority policy (paper Fig. 4/5): column-major vs level-set edge
//     memory on the actual scheduler, not the simulator;
//   * ready-queue sharding (paper VII.C): contention relief knob;
//   * bounded send/receive buffers (paper V: "the number of send and
//     receive buffers ... adjustable"): how small budgets trade blocked
//     sends for memory.

#include "bench_util.hpp"

#include "engine/engine.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

/// One engine run for the registered ablation points; returns the rank-0
/// wall seconds plus scheduler counters.
obs::BenchSample ablation_sample(const engine::EngineOptions& base) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  engine::EngineOptions opt = base;
  opt.probes = {p.objective};
  auto result = engine::run(model, {28}, p.kernel, opt);
  obs::BenchSample s;
  long long blocked = 0;
  for (const auto& rs : result.rank_stats) {
    s.seconds = std::max(s.seconds, rs.total_seconds);
    blocked += static_cast<long long>(rs.blocked_sends);
  }
  s.metrics = {
      {"tiles",
       static_cast<double>(result.total(&runtime::RunStats::tiles_executed))},
      {"blocked_sends", static_cast<double>(blocked)}};
  return s;
}

[[maybe_unused]] const bool registered = [] {
  register_bench("ablation/shards2_threads2", [] {
    engine::EngineOptions opt;
    opt.threads = 2;
    opt.queue_shards = 2;
    return ablation_sample(opt);
  });
  register_bench("ablation/mailbox_cap1_r2", [] {
    engine::EngineOptions opt;
    opt.ranks = 2;
    opt.mailbox_capacity = 1;
    return ablation_sample(opt);
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void policy_table() {
  header("ABL-POLICY",
         "engine runs: peak buffered edges under each priority policy");
  std::printf("%-10s %-8s %-12s %-14s %-12s\n", "problem", "N", "policy",
              "peak_edges", "seconds");
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  for (auto policy : {runtime::PriorityPolicy::kColumnMajor,
                      runtime::PriorityPolicy::kLevelSet}) {
    engine::EngineOptions opt;
    opt.policy = policy;
    opt.probes = {p.objective};
    auto result = engine::run(model, {32}, p.kernel, opt);
    const auto& s = result.rank_stats[0];
    std::printf("%-10s %-8d %-12s %-14lld %-12.4f\n", "bandit2", 32,
                policy == runtime::PriorityPolicy::kColumnMajor ? "column"
                                                                : "levelset",
                s.table.peak_buffered_edges, s.total_seconds);
  }
  std::printf("\n");
}

void shard_table() {
  header("ABL-SHARDS", "ready-queue shards vs wall time (4 worker threads)");
  std::printf("%-10s %-8s %-10s %-12s\n", "problem", "shards", "seconds",
              "tiles");
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  for (int shards : {1, 2, 4}) {
    engine::EngineOptions opt;
    opt.threads = 4;
    opt.queue_shards = shards;
    opt.probes = {p.objective};
    auto result = engine::run(model, {28}, p.kernel, opt);
    std::printf("%-10s %-8d %-10.4f %-12lld\n", "bandit2", shards,
                result.rank_stats[0].total_seconds,
                result.total(&runtime::RunStats::tiles_executed));
  }
  std::printf("# (single-CPU container: this validates correctness and "
              "overhead, not contention relief)\n\n");
}

void capacity_table() {
  header("ABL-BUFFERS",
         "bounded message buffers: blocked sends vs mailbox capacity");
  std::printf("%-10s %-10s %-14s %-14s\n", "problem", "capacity",
              "blocked_sends", "remote_edges");
  problems::Problem p = problems::bandit2(3);
  tiling::TilingModel model(p.spec);
  for (std::size_t cap : {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
    engine::EngineOptions opt;
    opt.ranks = 4;
    opt.threads = 2;
    opt.mailbox_capacity = cap;
    opt.probes = {p.objective};
    auto result = engine::run(model, {24}, p.kernel, opt);
    long long blocked = 0, remote = 0;
    for (const auto& s : result.rank_stats) {
      blocked += static_cast<long long>(s.blocked_sends);
      remote += s.remote_edges;
    }
    std::printf("%-10s %-10zu %-14lld %-14lld\n", "bandit2", cap, blocked,
                remote);
  }
  std::printf("\n");
}

void BM_EnginePolicy(benchmark::State& state) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  engine::EngineOptions opt;
  opt.policy = state.range(0) ? runtime::PriorityPolicy::kLevelSet
                              : runtime::PriorityPolicy::kColumnMajor;
  opt.probes = {p.objective};
  for (auto _ : state) {
    auto r = engine::run(model, {20}, p.kernel, opt);
    benchmark::DoNotOptimize(r.values.size());
  }
}
BENCHMARK(BM_EnginePolicy)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  policy_table();
  shard_table();
  capacity_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
#endif
