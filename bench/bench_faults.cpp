// FAULTS — fault-tolerance overhead on the clean path, and the price of an
// actual recovery.  The checkpoint store logs every tile completion, so its
// clean-path cost is one mutex-guarded map insert per tile; the budget
// (docs/fault-tolerance.md) is < 3% of tile throughput, which check.sh
// gates from the faults/clean vs faults/checkpointed registry entries.
//
// Configurations:
//   * clean          — the workload with fault tolerance off (baseline);
//   * checkpointed   — fault_tolerant=true, in-memory CheckpointStore;
//   * checkpoint_json — ditto plus periodic dpgen.checkpoint.v1 flushes,
//     the configuration a long-running job would actually use;
//   * kill_restart   — a seeded mid-run rank kill: measures the full
//     checkpoint -> rebalance -> restart -> completion path.

#include "bench_util.hpp"

#include <cstdio>

#include "engine/engine.hpp"
#include "minimpi/faults.hpp"
#include "runtime/checkpoint.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

struct FaultsRow {
  double seconds = 0.0;
  long long tiles = 0;
  int restarts = 0;
};

enum class Mode { kClean, kCheckpointed, kCheckpointJson, kKillRestart };

FaultsRow run_once(const tiling::TilingModel& model, Int n, Mode mode) {
  engine::EngineOptions opt;
  opt.ranks = 2;
  opt.threads = 1;
  switch (mode) {
    case Mode::kClean:
      break;
    case Mode::kCheckpointed:
      opt.fault_tolerant = true;
      break;
    case Mode::kCheckpointJson:
      opt.fault_tolerant = true;
      opt.checkpoint_json_path = "bench_faults_ckpt.json";
      opt.checkpoint_every_tiles = 64;
      break;
    case Mode::kKillRestart:
      opt.fault_plan = minimpi::FaultPlan::parse("kill:1@64");
      break;
  }
  auto r = engine::run(model, {n}, [](const engine::Cell& c) {
    c.V[c.loc] = 1.0;
    for (int j = 0; j < 2; ++j)
      if (c.valid[j]) c.V[c.loc] += c.V[c.loc_dep[j]];
  }, opt);
  FaultsRow row;
  for (const auto& s : r.rank_stats) {
    row.tiles += s.tiles_executed;
    row.seconds = std::max(row.seconds, s.total_seconds);
  }
  row.restarts = r.restarts;
  return row;
}

obs::BenchSample faults_sample(Mode mode) {
  // Production-shaped tiles: the paper sizes tiles to amortize per-tile
  // communication, and the checkpoint's per-tile cost (one store insert +
  // one payload copy per outgoing edge) amortizes the same way.  At w=64
  // a tile is 4096 cells against ~0.5us of bookkeeping, which is what the
  // < 3% clean-path budget is defined over — scheduling-bound microtiles
  // (hotpath/grid_w2) would put near-zero compute under the same constant
  // and measure the store, not the overhead.
  tiling::TilingModel model(grid_spec(64));
  const Int n = 2047;
  FaultsRow row = run_once(model, n, mode);
  obs::BenchSample s;
  s.seconds = row.seconds;
  const double cells = static_cast<double>(model.total_cells({n}));
  s.metrics = {{"tiles", static_cast<double>(row.tiles)},
               {"cells_per_sec", row.seconds > 0 ? cells / row.seconds : 0.0},
               {"restarts", static_cast<double>(row.restarts)}};
  return s;
}

[[maybe_unused]] const bool registered = [] {
  register_bench("faults/clean",
                 [] { return faults_sample(Mode::kClean); });
  // check.sh gates checkpointed >= 0.97x clean cells_per_sec (the < 3%
  // clean-path overhead budget).
  register_bench("faults/checkpointed",
                 [] { return faults_sample(Mode::kCheckpointed); });
  register_bench("faults/kill_restart",
                 [] { return faults_sample(Mode::kKillRestart); });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void faults_table() {
  header("FAULTS", "checkpoint overhead (clean path) and recovery cost");
  std::printf("%-17s %-9s %-12s %-14s %-9s\n", "config", "tiles", "seconds",
              "cells_per_sec", "restarts");
  struct Config {
    const char* name;
    Mode mode;
  };
  const Config configs[] = {
      {"clean", Mode::kClean},
      {"checkpointed", Mode::kCheckpointed},
      {"checkpoint_json", Mode::kCheckpointJson},
      {"kill_restart", Mode::kKillRestart},
  };
  tiling::TilingModel model(grid_spec(64));
  const Int n = 1023;
  const double cells = static_cast<double>(model.total_cells({n}));
  double clean_rate = 0.0;
  for (const auto& cfg : configs) {
    // One warm-up, then best-of-3 (the container is a single shared core).
    (void)run_once(model, n, cfg.mode);
    FaultsRow best;
    for (int rep = 0; rep < 3; ++rep) {
      FaultsRow row = run_once(model, n, cfg.mode);
      if (best.seconds == 0.0 || row.seconds < best.seconds) best = row;
    }
    const double rate = best.seconds > 0 ? cells / best.seconds : 0.0;
    if (cfg.mode == Mode::kClean) clean_rate = rate;
    std::printf("%-17s %-9lld %-12.4f %-14.0f %-9d\n", cfg.name, best.tiles,
                best.seconds, rate, best.restarts);
    json_record("faults", cfg.name, best.seconds,
                {{"tiles", static_cast<double>(best.tiles)},
                 {"cells_per_sec", rate},
                 {"overhead_pct",
                  clean_rate > 0 ? 100.0 * (1.0 - rate / clean_rate) : 0.0},
                 {"restarts", static_cast<double>(best.restarts)}});
  }
  std::remove("bench_faults_ckpt.json");
  std::printf("\n");
}

/// The checkpoint store's per-tile cost in isolation: tile_complete with a
/// couple of outbound edges, the exact call the driver makes on the clean
/// path.
void BM_CheckpointTileComplete(benchmark::State& state) {
  runtime::CheckpointStore<double> store;
  std::vector<double> payload(8, 1.0);
  Int i = 0;
  for (auto _ : state) {
    std::vector<runtime::CheckpointEdge<double>> edges;
    edges.push_back({{i + 1, i}, 0, payload});
    edges.push_back({{i, i + 2}, 1, payload});
    store.tile_complete({i, i + 1}, std::move(edges));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckpointTileComplete);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  dpgen::benchutil::parse_json_flag(&argc, argv);
  faults_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dpgen::benchutil::JsonSink::instance().flush();
  return 0;
}
#endif
