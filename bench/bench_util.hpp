#pragma once
// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every bench prints the series it regenerates with a leading "# <EXPID>"
// header so EXPERIMENTS.md can be cross-checked mechanically, then runs its
// google-benchmark microbenchmarks.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "problems/problems.hpp"
#include "sim/cluster_sim.hpp"
#include "spec/problem_spec.hpp"
#include "tiling/model.hpp"

namespace dpgen::benchutil {

/// An n-per-side square tile grid workload (unit deps).
inline spec::ProblemSpec grid_spec(Int width) {
  spec::ProblemSpec s;
  s.name("grid")
      .params({"N"})
      .vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .constraint("y >= 0")
      .constraint("y <= N")
      .dep("r1", {1, 0})
      .dep("r2", {0, 1})
      .load_balance({"x", "y"})
      .tile_widths({width, width})
      .center_code("V[loc] = 0.0;");
  return s;
}

/// A d-dimensional simplex workload with unit deps (bandit-shaped).
inline spec::ProblemSpec simplex_spec(int d, Int width,
                                      int lb_dims = 2) {
  spec::ProblemSpec s;
  s.name("simplex" + std::to_string(d)).params({"N"});
  std::vector<std::string> vars;
  for (int i = 0; i < d; ++i) vars.push_back("x" + std::to_string(i + 1));
  s.vars(vars);
  std::string sum;
  for (int i = 0; i < d; ++i) {
    s.constraint(vars[static_cast<std::size_t>(i)] + " >= 0");
    sum += (i ? " + " : "") + vars[static_cast<std::size_t>(i)];
  }
  s.constraint(sum + " <= N");
  for (int i = 0; i < d; ++i) {
    IntVec r(static_cast<std::size_t>(d), 0);
    r[static_cast<std::size_t>(i)] = 1;
    s.dep("r" + std::to_string(i + 1), r);
  }
  std::vector<std::string> lb(vars.begin(),
                              vars.begin() + std::min(lb_dims, d));
  s.load_balance(lb);
  s.tile_widths(IntVec(static_cast<std::size_t>(d), width));
  s.center_code("V[loc] = 0.0;");
  return s;
}

/// Finds the smallest N whose total location count reaches `target`.
inline Int size_for_cells(const tiling::TilingModel& model, Int target) {
  Int lo = 0, hi = 1;
  while (model.total_cells({hi}) < target) hi *= 2;
  while (lo < hi) {
    Int mid = lo + (hi - lo) / 2;
    if (model.total_cells({mid}) < target)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

inline void header(const char* exp_id, const char* what) {
  std::printf("# %s  %s\n", exp_id, what);
}

}  // namespace dpgen::benchutil
