#pragma once
// Shared helpers for the figure-reproduction benchmark binaries.
//
// Every bench prints the series it regenerates with a leading "# <EXPID>"
// header so EXPERIMENTS.md can be cross-checked mechanically, then runs its
// google-benchmark microbenchmarks.
//
// Each bench .cpp is compiled twice: standalone (DPGEN_BENCH_STANDALONE,
// with its printf tables, BENCHMARK() micros and main) and into the
// dpgen_benchsuite object library (registrations into obs::BenchRegistry
// only), so tools/dpgen-bench can run every bench with repeated trials and
// gate the medians against an archived baseline.
//
// Standalone binaries still accept `--json <path>` / `--json=<path>`: every
// table data point is written as a machine-readable record
//   {"bench": ..., "config": ..., "seconds": ..., "metrics": {...}}
// rendered through json::Writer (strings escaped, NaN/inf as null), so
// sweeps can be diffed across commits without parsing printf tables.  The
// flag is stripped before google-benchmark sees argv.  The document is
//   {"meta": {git_sha, machine, fingerprint, timestamp}, "records": [...]}
// — the same machine fingerprint dpgen-bench stamps into dpgen.bench.v1
// documents (obs::collect_run_meta), so archived sweeps from different
// hosts are never compared against each other by accident.

#ifdef DPGEN_BENCH_STANDALONE
#include <benchmark/benchmark.h>
#endif

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/bench_registry.hpp"
#include "problems/problems.hpp"
#include "sim/cluster_sim.hpp"
#include "spec/problem_spec.hpp"
#include "support/json.hpp"
#include "tiling/model.hpp"

namespace dpgen::benchutil {

/// Collects bench records and writes them as one JSON array on flush().
/// Inactive (every call a no-op) until open() is given a path.
class JsonSink {
 public:
  static JsonSink& instance() {
    static JsonSink sink;
    return sink;
  }

  void open(const std::string& path) { path_ = path; }
  bool active() const { return !path_.empty(); }

  void record(const std::string& bench, const std::string& config,
              double seconds,
              const std::vector<std::pair<std::string, double>>& metrics) {
    if (!active()) return;
    json::Writer w;
    w.begin_object();
    w.key("bench").value(bench);
    w.key("config").value(config);
    w.key("seconds").value(seconds);
    w.key("metrics").begin_object();
    for (const auto& [name, value] : metrics) w.key(name).value(value);
    w.end_object();
    w.end_object();
    records_.push_back(w.str());
  }

  /// Writes the collected records; call once at the end of main().
  void flush() {
    if (!active()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open --json file '%s'\n", path_.c_str());
      return;
    }
    const obs::RunMeta meta = obs::collect_run_meta(0);
    json::Writer mw;
    mw.begin_object();
    mw.key("git_sha").value(meta.git_sha);
    mw.key("machine").value(meta.machine);
    mw.key("fingerprint").value(meta.fingerprint);
    mw.key("timestamp").value(static_cast<double>(meta.timestamp));
    mw.end_object();
    std::fprintf(f, "{\n\"meta\": %s,\n\"records\": [\n", mw.str().c_str());
    for (std::size_t i = 0; i < records_.size(); ++i)
      std::fprintf(f, "  %s%s\n", records_[i].c_str(),
                   i + 1 < records_.size() ? "," : "");
    std::fputs("]\n}\n", f);
    std::fclose(f);
  }

 private:
  std::string path_;
  std::vector<std::string> records_;
};

/// Shorthand used by the table functions.
inline void json_record(
    const std::string& bench, const std::string& config, double seconds,
    const std::vector<std::pair<std::string, double>>& metrics) {
  JsonSink::instance().record(bench, config, seconds, metrics);
}

/// Strips `--json <path>` / `--json=<path>` from argv (call before
/// benchmark::Initialize, which rejects unknown flags) and opens the sink.
inline void parse_json_flag(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      JsonSink::instance().open(argv[++i]);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      JsonSink::instance().open(argv[i] + 7);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// An n-per-side square tile grid workload (unit deps).
inline spec::ProblemSpec grid_spec(Int width) {
  spec::ProblemSpec s;
  s.name("grid")
      .params({"N"})
      .vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .constraint("y >= 0")
      .constraint("y <= N")
      .dep("r1", {1, 0})
      .dep("r2", {0, 1})
      .load_balance({"x", "y"})
      .tile_widths({width, width})
      .center_code("V[loc] = 0.0;");
  return s;
}

/// A d-dimensional simplex workload with unit deps (bandit-shaped).
inline spec::ProblemSpec simplex_spec(int d, Int width,
                                      int lb_dims = 2) {
  spec::ProblemSpec s;
  s.name("simplex" + std::to_string(d)).params({"N"});
  std::vector<std::string> vars;
  for (int i = 0; i < d; ++i) vars.push_back("x" + std::to_string(i + 1));
  s.vars(vars);
  std::string sum;
  for (int i = 0; i < d; ++i) {
    s.constraint(vars[static_cast<std::size_t>(i)] + " >= 0");
    sum += (i ? " + " : "") + vars[static_cast<std::size_t>(i)];
  }
  s.constraint(sum + " <= N");
  for (int i = 0; i < d; ++i) {
    IntVec r(static_cast<std::size_t>(d), 0);
    r[static_cast<std::size_t>(i)] = 1;
    s.dep("r" + std::to_string(i + 1), r);
  }
  std::vector<std::string> lb(vars.begin(),
                              vars.begin() + std::min(lb_dims, d));
  s.load_balance(lb);
  s.tile_widths(IntVec(static_cast<std::size_t>(d), width));
  s.center_code("V[loc] = 0.0;");
  return s;
}

/// Finds the smallest N whose total location count reaches `target`.
inline Int size_for_cells(const tiling::TilingModel& model, Int target) {
  Int lo = 0, hi = 1;
  while (model.total_cells({hi}) < target) hi *= 2;
  while (lo < hi) {
    Int mid = lo + (hi - lo) / 2;
    if (model.total_cells({mid}) < target)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

inline void header(const char* exp_id, const char* what) {
  std::printf("# %s  %s\n", exp_id, what);
}

/// Seconds elapsed since `t0` (steady clock); trial-timing shorthand for
/// the registered benches.
inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Registers `name` in the process-wide BenchRegistry; used from a static
/// initializer in each bench .cpp so the same objects serve both the
/// standalone binary and the dpgen-bench runner.
inline bool register_bench(const std::string& name,
                           std::function<obs::BenchSample()> fn) {
  return obs::BenchRegistry::instance().add(name, std::move(fn));
}

}  // namespace dpgen::benchutil
