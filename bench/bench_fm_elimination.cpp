// FMPERF — paper section IV.D: Fourier-Motzkin elimination with duplicate
// and redundant-constraint pruning stays tractable; without pruning the
// constraint count can grow ~(n/2)^2 per eliminated variable.

#include "bench_util.hpp"

#include "poly/fm.hpp"
#include "poly/parse.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;
using poly::System;
using poly::Vars;

System simplex_system(int d) {
  Vars v;
  v.add("N");
  for (int i = 0; i < d; ++i) v.add("x" + std::to_string(i));
  System s(v);
  std::string sum;
  for (int i = 0; i < d; ++i) {
    s.add(poly::parse_constraint("x" + std::to_string(i) + " >= 0", v));
    sum += (i ? " + x" : "x") + std::to_string(i);
  }
  s.add(poly::parse_constraint(sum + " <= N", v));
  // Extra pairwise couplings to make elimination non-trivial.
  for (int i = 0; i + 1 < d; ++i)
    s.add(poly::parse_constraint(
        "x" + std::to_string(i) + " + 2*x" + std::to_string(i + 1) +
            " <= 2*N",
        v));
  return s;
}

[[maybe_unused]] const bool registered = [] {
  register_bench("fm/eliminate_simplex8", [] {
    System s = simplex_system(8);
    const auto t0 = std::chrono::steady_clock::now();
    System cur = s;
    for (int k = 8; k >= 1; --k) cur = cur.eliminated(k);
    obs::BenchSample sample;
    sample.seconds = seconds_since(t0);
    sample.metrics = {{"final_constraints", static_cast<double>(cur.size())}};
    return sample;
  });
  register_bench("fm/tiling_model_simplex4", [] {
    const auto t0 = std::chrono::steady_clock::now();
    tiling::TilingModel model(simplex_spec(4, 4));
    obs::BenchSample sample;
    sample.seconds = seconds_since(t0);
    sample.metrics = {{"edges", static_cast<double>(model.num_edges())}};
    return sample;
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void fm_table() {
  header("FMPERF", "constraints produced vs kept per FM elimination step");
  std::printf("%-6s %-8s %-10s %-10s %-10s\n", "d", "step", "before",
              "produced", "kept");
  for (int d : {4, 6, 8}) {
    System s = simplex_system(d);
    for (int step = 0; step < d; ++step) {
      int before = s.size();
      s = s.eliminated(1 + (d - 1 - step));  // innermost first
      auto st = poly::fm_last_stats();
      std::printf("%-6d %-8d %-10d %-10lld %-10lld\n", d, step, before,
                  st.produced, st.kept);
    }
  }
  std::printf("# pruning keeps the working set near-linear; naive FM would "
              "square the inequality count each step\n\n");
}

void BM_FmEliminateSimplex(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  System s = simplex_system(d);
  for (auto _ : state) {
    System cur = s;
    for (int k = d; k >= 1; --k) cur = cur.eliminated(k);
    benchmark::DoNotOptimize(cur.size());
  }
}
BENCHMARK(BM_FmEliminateSimplex)->Arg(4)->Arg(6)->Arg(8);

void BM_TilingModelConstruction(benchmark::State& state) {
  for (auto _ : state) {
    tiling::TilingModel model(
        simplex_spec(static_cast<int>(state.range(0)), 4));
    benchmark::DoNotOptimize(model.num_edges());
  }
}
BENCHMARK(BM_TilingModelConstruction)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  fm_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
#endif
