// SUITE — engine throughput across the packaged problem suite: locations
// per second through the full tiled scheduler (interpreted center loops),
// plus tiles and edge traffic per problem.  Not a paper figure; this is
// the library's own performance baseline so regressions are visible.

#include "bench_util.hpp"

#include "engine/engine.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

/// One engine run for the registered suite points: cells/s through the
/// full tiled scheduler at sizes small enough for repeated trials.
obs::BenchSample suite_sample(const problems::Problem& p,
                              const IntVec& params) {
  tiling::TilingModel model(p.spec);
  Int cells = model.total_cells(params);
  engine::EngineOptions opt;
  opt.probes = {p.objective};
  auto result = engine::run(model, params, p.kernel, opt);
  obs::BenchSample s;
  s.seconds = result.rank_stats[0].total_seconds;
  s.metrics = {
      {"cells", static_cast<double>(cells)},
      {"tiles",
       static_cast<double>(result.total(&runtime::RunStats::tiles_executed))},
      {"cells_per_s",
       s.seconds > 0 ? static_cast<double>(cells) / s.seconds : 0.0}};
  return s;
}

[[maybe_unused]] const bool registered = [] {
  register_bench("suite/lcs2_n150", [] {
    auto seqs = std::vector<std::string>{problems::random_dna(150, 4),
                                         problems::random_dna(150, 5)};
    return suite_sample(problems::lcs(seqs, 16),
                        problems::sequence_params(seqs));
  });
  register_bench("suite/msa3_n40", [] {
    auto seqs = std::vector<std::string>{problems::random_dna(40, 1),
                                         problems::random_dna(40, 2),
                                         problems::random_dna(40, 3)};
    return suite_sample(problems::msa(seqs, 8),
                        problems::sequence_params(seqs));
  });
  register_bench("suite/seam_200x200", [] {
    return suite_sample(problems::seam_carving(32), {200, 200});
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void suite_table() {
  header("SUITE", "engine throughput per problem (1 rank, 1 thread)");
  std::printf("%-14s %-14s %-10s %-12s %-14s\n", "problem", "cells",
              "tiles", "seconds", "Mcells/s");
  struct Case {
    std::string name;
    problems::Problem prob;
    IntVec params;
  };
  std::vector<Case> cases;
  cases.push_back({"bandit2", problems::bandit2(6), {40}});
  cases.push_back({"bandit3", problems::bandit3(4), {14}});
  cases.push_back({"bandit2_delay", problems::bandit2_delay(4), {12}});
  {
    auto seqs = std::vector<std::string>{problems::random_dna(60, 1),
                                         problems::random_dna(60, 2),
                                         problems::random_dna(60, 3)};
    cases.push_back(
        {"msa3", problems::msa(seqs, 8), problems::sequence_params(seqs)});
  }
  {
    auto seqs = std::vector<std::string>{problems::random_dna(300, 4),
                                         problems::random_dna(300, 5)};
    cases.push_back(
        {"lcs2", problems::lcs(seqs, 16), problems::sequence_params(seqs)});
  }
  {
    std::string a = problems::random_dna(120, 6),
                b = problems::random_dna(120, 7);
    cases.push_back({"align_affine", problems::align_affine(a, b),
                     problems::sequence_params({a, b})});
  }
  cases.push_back({"seam", problems::seam_carving(32), {300, 300}});
  cases.push_back({"coin_change", problems::coin_change({1, 7, 23}, 16),
                   {5000}});

  for (auto& c : cases) {
    tiling::TilingModel model(c.prob.spec);
    Int cells = model.total_cells(c.params);
    engine::EngineOptions opt;
    opt.probes = {c.prob.objective};
    auto result = engine::run(model, c.params, c.prob.kernel, opt);
    double secs = result.rank_stats[0].total_seconds;
    std::printf("%-14s %-14lld %-10lld %-12.4f %-14.2f\n", c.name.c_str(),
                static_cast<long long>(cells),
                result.total(&runtime::RunStats::tiles_executed), secs,
                static_cast<double>(cells) / secs / 1e6);
  }
  std::printf("\n");
}

void BM_EngineMsa3(benchmark::State& state) {
  auto seqs = std::vector<std::string>{problems::random_dna(30, 1),
                                       problems::random_dna(30, 2),
                                       problems::random_dna(30, 3)};
  problems::Problem p = problems::msa(seqs, 8);
  tiling::TilingModel model(p.spec);
  IntVec params = problems::sequence_params(seqs);
  engine::EngineOptions opt;
  opt.probes = {p.objective};
  for (auto _ : state) {
    auto r = engine::run(model, params, p.kernel, opt);
    benchmark::DoNotOptimize(r.values.size());
  }
  state.SetItemsProcessed(state.iterations() * model.total_cells(params));
}
BENCHMARK(BM_EngineMsa3)->Unit(benchmark::kMillisecond);

void BM_EngineSeam(benchmark::State& state) {
  problems::Problem p = problems::seam_carving(32);
  tiling::TilingModel model(p.spec);
  IntVec params{100, 100};
  engine::EngineOptions opt;
  opt.probes = {p.objective};
  for (auto _ : state) {
    auto r = engine::run(model, params, p.kernel, opt);
    benchmark::DoNotOptimize(r.values.size());
  }
  state.SetItemsProcessed(state.iterations() * model.total_cells(params));
}
BENCHMARK(BM_EngineSeam)->Unit(benchmark::kMillisecond);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  suite_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
#endif
