// INIT — paper section IV.K: initial tile generation runs serially and
// costs < 0.5% of total run time even for the largest runs, because the
// face-system scan touches O(n^(d-1)) candidates instead of all Theta(n^d)
// locations (or all tiles).

#include "bench_util.hpp"

#include "engine/engine.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

[[maybe_unused]] const bool registered = [] {
  register_bench("initial_tiles/scan_bandit2_n80", [] {
    tiling::TilingModel model(problems::bandit2(4).spec);
    IntVec params{80};
    const auto t0 = std::chrono::steady_clock::now();
    Int scanned = model.for_each_initial_tile(params, [](const IntVec&) {});
    obs::BenchSample s;
    s.seconds = seconds_since(t0);
    s.metrics = {{"candidates", static_cast<double>(scanned)}};
    return s;
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void init_table() {
  header("INIT", "initial-tile scan cost vs total run");
  std::printf("%-10s %-8s %-10s %-12s %-12s %-10s\n", "problem", "N",
              "tiles", "candidates", "scan_s", "frac_total");
  struct Case {
    const char* name;
    problems::Problem prob;
    Int n;
  };
  std::vector<Case> cases;
  cases.push_back({"bandit2", problems::bandit2(4), 72});
  cases.push_back({"bandit3", problems::bandit3(3), 21});
  {
    auto seqs = std::vector<std::string>{problems::random_dna(160, 1),
                                         problems::random_dna(160, 2)};
    cases.push_back({"msa2", problems::msa(seqs, 8), 160});
  }
  for (auto& c : cases) {
    tiling::TilingModel model(c.prob.spec);
    IntVec params;
    for (int i = 0; i < model.nparams(); ++i) params.push_back(c.n);
    Int candidates =
        model.for_each_initial_tile(params, [](const IntVec&) {});
    engine::EngineOptions opt;
    opt.probes = {c.prob.objective};
    auto result = engine::run(model, params, c.prob.kernel, opt);
    const auto& s = result.rank_stats[0];
    std::printf("%-10s %-8lld %-10lld %-12lld %-12.6f %-10.4f%%\n", c.name,
                static_cast<long long>(c.n), model.total_tiles(params),
                candidates, s.init_scan_seconds,
                100.0 * s.init_scan_seconds / s.total_seconds);
  }
  std::printf("# paper: initial tile generation is serial and < 0.5%% of "
              "total run time for even the largest runs\n\n");
}

void BM_InitialTileScan(benchmark::State& state) {
  tiling::TilingModel model(problems::bandit2(4).spec);
  IntVec params{static_cast<Int>(state.range(0))};
  for (auto _ : state) {
    Int scanned = model.for_each_initial_tile(params, [](const IntVec&) {});
    benchmark::DoNotOptimize(scanned);
  }
}
BENCHMARK(BM_InitialTileScan)->Arg(40)->Arg(80);

void BM_DepCount(benchmark::State& state) {
  tiling::TilingModel model(problems::bandit2(4).spec);
  IntVec params{40};
  IntVec tile{2, 2, 1, 1};
  for (auto _ : state)
    benchmark::DoNotOptimize(model.deps_of(params, tile).size());
}
BENCHMARK(BM_DepCount);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  init_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
#endif
