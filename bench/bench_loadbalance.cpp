// LB / LBALT — paper Figure 2 + section IV.J (per-dimension balancing with
// Ehrhart work counts) and Figure 8 + section VII.B (hyperplane cuts).
//
// Claims reproduced:
//   * balancing on fewer than all dimensions achieves good work balance,
//     but too few dimensions balances badly (one dim on Fig. 2's shape is
//     "much worse"),
//   * the per-dimension method creates long critical paths; hyperplane
//     cuts on wedge-shaped spaces reduce idle time when scaling across
//     nodes (2-arm bandit).

#include "bench_util.hpp"

#include "tiling/balance.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

[[maybe_unused]] const bool registered = [] {
  register_bench("loadbalance/balancer_bandit2_n127_r8", [] {
    tiling::TilingModel model(problems::bandit2(8).spec);
    IntVec params{127};
    const auto t0 = std::chrono::steady_clock::now();
    tiling::LoadBalancer lb(model, params, 8);
    obs::BenchSample s;
    s.seconds = seconds_since(t0);
    s.metrics = {{"imbalance", lb.imbalance()},
                 {"cells", static_cast<double>(lb.num_cells())}};
    return s;
  });
  register_bench("loadbalance/sim_hyperplane_nodes4", [] {
    tiling::TilingModel model(problems::bandit2(8).spec);
    sim::ClusterConfig cfg;
    cfg.nodes = 4;
    cfg.cores_per_node = 8;
    cfg.balance = tiling::BalanceMethod::kHyperplane;
    const auto t0 = std::chrono::steady_clock::now();
    auto r = sim::simulate(model, {127}, cfg);
    obs::BenchSample s;
    s.seconds = seconds_since(t0);
    s.metrics = {{"utilization", r.utilization},
                 {"tiles", static_cast<double>(r.tiles)}};
    return s;
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void lb_table() {
  header("LB", "work imbalance (max/avg) vs number of balanced dimensions");
  std::printf("%-8s %-7s %-8s %-12s %-12s\n", "space", "nodes", "lbdims",
              "imbalance", "cells");
  for (int d : {3, 4}) {
    for (int lbdims = 1; lbdims <= std::min(3, d); ++lbdims) {
      tiling::TilingModel model(simplex_spec(d, 4, lbdims));
      IntVec params{47};
      for (int nodes : {3, 8}) {
        tiling::LoadBalancer lb(model, params, nodes);
        std::printf("%-8s %-7d %-8d %-12.4f %-12lld\n",
                    ("simp" + std::to_string(d)).c_str(), nodes, lbdims,
                    lb.imbalance(), lb.num_cells());
      }
    }
  }
  std::printf("# paper: selecting fewer than all dims balances well, but "
              "too few (e.g. 1) is much worse\n\n");
}

void lbalt_table() {
  header("LBALT",
         "per-dimension vs hyperplane cuts on the 2-arm bandit: idle time");
  std::printf("%-7s %-14s %-14s %-12s %-12s\n", "nodes", "perdim_util",
              "hyper_util", "perdim_mk", "hyper_mk");
  tiling::TilingModel model(problems::bandit2(8).spec);
  IntVec params{127};
  for (int nodes : {2, 4, 8}) {
    sim::ClusterConfig cfg;
    cfg.nodes = nodes;
    cfg.cores_per_node = 8;
    cfg.balance = tiling::BalanceMethod::kPerDimension;
    auto a = sim::simulate(model, params, cfg);
    cfg.balance = tiling::BalanceMethod::kHyperplane;
    auto b = sim::simulate(model, params, cfg);
    std::printf("%-7d %-14.3f %-14.3f %-12.4f %-12.4f\n", nodes,
                a.utilization, b.utilization, a.makespan, b.makespan);
  }
  std::printf("# paper: hyperplane balancing reduced idle times on the "
              "2-arm bandit when scaling across nodes (future work, Fig. 8)\n\n");
}

void BM_BalancerConstruction(benchmark::State& state) {
  tiling::TilingModel model(problems::bandit2(8).spec);
  IntVec params{static_cast<Int>(state.range(0))};
  for (auto _ : state) {
    tiling::LoadBalancer lb(model, params, 8);
    benchmark::DoNotOptimize(lb.total_work());
  }
}
BENCHMARK(BM_BalancerConstruction)->Arg(63)->Arg(127);

void BM_OwnerLookup(benchmark::State& state) {
  tiling::TilingModel model(problems::bandit2(8).spec);
  IntVec params{127};
  tiling::LoadBalancer lb(model, params, 8);
  IntVec tile{3, 2, 1, 0};
  for (auto _ : state) benchmark::DoNotOptimize(lb.owner(tile));
}
BENCHMARK(BM_OwnerLookup);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  lb_table();
  lbalt_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
#endif
