// PEND — paper section V.B: storing only pending tiles (and only packed
// edges) keeps live memory O(n^(d-1)) while the whole iteration space is
// Theta(n^d): "an order of magnitude" reduction that lets much larger
// problems be solved.

#include "bench_util.hpp"

#include "engine/engine.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

[[maybe_unused]] const bool registered = [] {
  register_bench("pending_memory/engine_bandit2_n32", [] {
    problems::Problem p = problems::bandit2(4);
    tiling::TilingModel model(p.spec);
    IntVec params{32};
    engine::EngineOptions opt;
    opt.probes = {p.objective};
    const auto t0 = std::chrono::steady_clock::now();
    auto result = engine::run(model, params, p.kernel, opt);
    obs::BenchSample s;
    s.seconds = seconds_since(t0);
    long long peak_scalars = 0, peak_pending = 0;
    for (const auto& rs : result.rank_stats) {
      peak_scalars += rs.table.peak_buffered_scalars;
      peak_pending += rs.table.peak_pending_tiles;
    }
    s.metrics = {{"cells", static_cast<double>(model.total_cells(params))},
                 {"peak_buffered_scalars",
                  static_cast<double>(peak_scalars)},
                 {"peak_pending_tiles", static_cast<double>(peak_pending)}};
    return s;
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void pend_table() {
  header("PEND", "peak live memory vs full-array storage (engine runs)");
  std::printf("%-10s %-8s %-14s %-16s %-16s %-10s\n", "problem", "N",
              "cells(n^d)", "peak_edge_mem", "peak_pending", "reduction");
  problems::Problem p = problems::bandit2(4);
  for (Int n : {16, 24, 32, 48}) {
    tiling::TilingModel model(p.spec);
    IntVec params{n};
    engine::EngineOptions opt;
    opt.probes = {p.objective};
    auto result = engine::run(model, params, p.kernel, opt);
    long long peak_scalars = 0, peak_pending = 0;
    for (const auto& s : result.rank_stats) {
      peak_scalars += s.table.peak_buffered_scalars;
      peak_pending += s.table.peak_pending_tiles;
    }
    // Full-array storage would keep one scalar per location plus nothing
    // else; tile buffers in flight add threads * buffer_size.
    long long cells = model.total_cells(params);
    long long live = peak_scalars + model.buffer_size();
    std::printf("%-10s %-8lld %-14lld %-16lld %-16lld %-10.1fx\n", "bandit2",
                static_cast<long long>(n), cells, live, peak_pending,
                static_cast<double>(cells) / static_cast<double>(live));
  }
  std::printf("# paper: pending-only storage reduces memory by an order of "
              "magnitude (O(n^(d-1)) live tiles of Theta(n^d) locations)\n\n");
}

void BM_EngineBandit2(benchmark::State& state) {
  problems::Problem p = problems::bandit2(4);
  tiling::TilingModel model(p.spec);
  IntVec params{static_cast<Int>(state.range(0))};
  engine::EngineOptions opt;
  opt.probes = {p.objective};
  for (auto _ : state) {
    auto result = engine::run(model, params, p.kernel, opt);
    benchmark::DoNotOptimize(result.values.size());
  }
  state.SetItemsProcessed(state.iterations() * model.total_cells(params));
}
BENCHMARK(BM_EngineBandit2)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  pend_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
#endif
