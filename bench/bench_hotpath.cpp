// HOTPATH — edge-dominated scheduling overhead: tiles and edges per second
// on small-tile configurations where tile execution is trivial and the
// driver loop (pack -> route -> deliver -> unpack) dominates.  This is the
// regression harness for the allocation-free hot path: the table prints
// edge throughput plus the buffer-pool counters (runtime.edge_alloc /
// runtime.pool_hit), and `--json <path>` records every row so
// BENCH_hotpath.json can track the trajectory across commits.
//
// Configurations:
//   * grid/w=2 and grid/w=4 — a 2D unit-dep grid cut into tiny tiles; each
//     tile is 4 (resp. 16) cells but produces/consumes 2 edges, so the run
//     is scheduling-bound.
//   * ranks=2 rows route half the edges through minimpi (remote path).
//   * table/ rows drive ShardedTileTable::deliver/pop directly, isolating
//     the pending-map + ready-queue cost from pack/execute.

#include "bench_util.hpp"

#include <chrono>

#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "runtime/tile_table.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

std::int64_t counter_value(const char* name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

struct HotpathRow {
  double seconds = 0.0;
  long long tiles = 0;
  long long edges = 0;
  long long edge_allocs = 0;
  long long pool_hits = 0;
};

HotpathRow run_once(const tiling::TilingModel& model, Int n, int ranks,
                    bool monitored = false, bool profiled = false,
                    bool msgtraced = false) {
  engine::EngineOptions opt;
  opt.ranks = ranks;
  opt.threads = 1;
  if (monitored) opt.monitor_path = "-";  // live telemetry, no event log
  if (profiled) opt.profile_path = "-";   // sampling profiler, no document
  if (msgtraced) opt.msgtrace_json_path = "-";  // collect records, no doc
  std::int64_t alloc0 = counter_value("runtime.edge_alloc");
  std::int64_t hit0 = counter_value("runtime.pool_hit");
  auto r = engine::run(model, {n}, [](const engine::Cell& c) {
    c.V[c.loc] = 1.0;
    for (int j = 0; j < 2; ++j)
      if (c.valid[j]) c.V[c.loc] += c.V[c.loc_dep[j]];
  }, opt);
  HotpathRow row;
  for (const auto& s : r.rank_stats) {
    row.tiles += s.tiles_executed;
    row.edges += s.local_edges + s.remote_edges;
    row.seconds = std::max(row.seconds, s.total_seconds);
  }
  row.edge_allocs = counter_value("runtime.edge_alloc") - alloc0;
  row.pool_hits = counter_value("runtime.pool_hit") - hit0;
  return row;
}

/// One pass of the deliver/pop pattern BM_TableDeliverPop measures, shared
/// with the registry entry below.
double table_deliver_pop_once(Int n) {
  runtime::TileOrder order({0, 1}, {1, 1},
                           runtime::PriorityPolicy::kColumnMajor);
  auto deps = [&](const IntVec& t) {
    return (t[0] > 0 ? 1 : 0) + (t[1] > 0 ? 1 : 0);
  };
  std::vector<double> payload(4, 1.0);
  const auto t0 = std::chrono::steady_clock::now();
  runtime::ShardedTileTable<double> table(order, 1);
  table.seed_ready({0, 0});
  long long popped = 0;
  while (auto ready = table.pop(0)) {
    ++popped;
    const IntVec& t = ready->tile;
    for (int k = 0; k < 2; ++k) {
      IntVec c = t;
      c[static_cast<std::size_t>(k)] += 1;
      if (c[0] >= n || c[1] >= n) continue;
      table.deliver(c, deps, runtime::EdgeData<double>{k, payload});
    }
  }
  if (popped != n * n) return -1.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// dpgen-bench entries: the same workloads as the table, at sizes small
/// enough for repeated gated trials.
obs::BenchSample hotpath_sample(Int width, Int n, int ranks,
                                bool monitored = false, bool profiled = false,
                                bool msgtraced = false) {
  tiling::TilingModel model(grid_spec(width));
  std::int64_t bytes0 =
      obs::MetricsRegistry::instance().counter("comm.bytes_sent").value();
  HotpathRow row = run_once(model, n, ranks, monitored, profiled, msgtraced);
  const double bytes_on_wire = static_cast<double>(
      obs::MetricsRegistry::instance().counter("comm.bytes_sent").value() -
      bytes0);
  obs::BenchSample s;
  s.seconds = row.seconds;
  const double eps = row.seconds > 0 ? row.edges / row.seconds : 0.0;
  const double pool_total =
      static_cast<double>(row.pool_hits + row.edge_allocs);
  s.metrics = {{"tiles", static_cast<double>(row.tiles)},
               {"edges", static_cast<double>(row.edges)},
               {"edges_per_s", eps},
               {"pool_hit_pct", pool_total > 0
                                    ? 100.0 * row.pool_hits / pool_total
                                    : 0.0},
               {"bytes_on_wire", bytes_on_wire}};
  return s;
}

[[maybe_unused]] const bool registered = [] {
  register_bench("hotpath/grid_w2",
                 [] { return hotpath_sample(2, 255, 1); });
  register_bench("hotpath/grid_w2_r2",
                 [] { return hotpath_sample(2, 255, 2); });
  // Same workload with the live monitor attached: guards the "monitoring
  // costs < 3% edge throughput" budget (ISSUE 6) — the steady-state cost
  // is one relaxed load per tile.
  register_bench("hotpath/grid_w2_mon",
                 [] { return hotpath_sample(2, 255, 1, true); });
  // Same workload with the sampling profiler + per-tile counter windows
  // attached: guards the "continuous profiling costs < 3% edge
  // throughput" budget — the steady-state cost is two frame-stack stores
  // per span plus an adaptive-stride counter read (most tiles skip it).
  register_bench("hotpath/grid_w2_prof",
                 [] { return hotpath_sample(2, 255, 1, false, true); });
  // The 2-rank workload with message tracing on: guards the "msgtrace
  // costs < 3% edge throughput" budget (ISSUE 10).  Compare against
  // grid_w2_r2 — grid_w2 is single-rank and sends no messages, so it
  // would measure nothing.  The steady-state cost is six steady-clock
  // stamps plus one ring store per remote edge.
  register_bench("hotpath/grid_w2_msgtrace",
                 [] { return hotpath_sample(2, 255, 2, false, false, true); });
  register_bench("hotpath/table_deliver_pop", [] {
    obs::BenchSample s;
    const Int n = 64;
    s.seconds = table_deliver_pop_once(n);
    s.metrics = {{"edges", static_cast<double>(2 * n * n)}};
    return s;
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void hotpath_table() {
  header("HOTPATH", "edge-dominated driver throughput (small tiles)");
  std::printf("%-14s %-9s %-10s %-12s %-14s %-12s %-10s\n", "config",
              "tiles", "edges", "seconds", "edges_per_s", "edge_allocs",
              "pool_hit%");
  struct Config {
    const char* name;
    Int width;
    Int n;
    int ranks;
  };
  // N chosen so each config runs ~10^4..10^5 tiles: big enough for a
  // stable steady state, small enough for the check.sh smoke flavour.
  const Config configs[] = {
      {"grid/w2", 2, 511, 1},
      {"grid/w4", 4, 511, 1},
      {"grid/w2/r2", 2, 511, 2},
      {"grid/w4/r2", 4, 511, 2},
  };
  for (const auto& cfg : configs) {
    tiling::TilingModel model(grid_spec(cfg.width));
    // One warm-up, then best-of-3 (the container is a single shared core).
    (void)run_once(model, cfg.n, cfg.ranks);
    HotpathRow best;
    for (int rep = 0; rep < 3; ++rep) {
      HotpathRow row = run_once(model, cfg.n, cfg.ranks);
      if (best.seconds == 0.0 || row.seconds < best.seconds) best = row;
    }
    const double eps = best.seconds > 0 ? best.edges / best.seconds : 0.0;
    const double pool_total =
        static_cast<double>(best.pool_hits + best.edge_allocs);
    const double hit_pct =
        pool_total > 0 ? 100.0 * best.pool_hits / pool_total : 0.0;
    std::printf("%-14s %-9lld %-10lld %-12.4f %-14.0f %-12lld %-10.2f\n",
                cfg.name, best.tiles, best.edges, best.seconds, eps,
                best.edge_allocs, hit_pct);
    json_record("hotpath", cfg.name, best.seconds,
                {{"tiles", static_cast<double>(best.tiles)},
                 {"edges", static_cast<double>(best.edges)},
                 {"edges_per_s", eps},
                 {"edge_allocs", static_cast<double>(best.edge_allocs)},
                 {"pool_hit_pct", hit_pct}});
  }
  std::printf("\n");
}

/// Pending-map + ready-queue cost in isolation: every tile of an n x n
/// grid receives two edges (with small payloads) and is popped once its
/// dependencies are satisfied, mimicking the driver's delivery pattern.
void BM_TableDeliverPop(benchmark::State& state) {
  const Int n = state.range(0);
  for (auto _ : state) {
    if (table_deliver_pop_once(n) < 0)
      state.SkipWithError("wrong pop count");
  }
  state.SetItemsProcessed(state.iterations() * n * n * 2);
}
BENCHMARK(BM_TableDeliverPop)->Arg(64)->Arg(128);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  dpgen::benchutil::parse_json_flag(&argc, argv);
  hotpath_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dpgen::benchutil::JsonSink::instance().flush();
  return 0;
}
#endif
