// FIG6 / SPD1 — paper Figure 6 and section VIII: shared-memory scaling on
// one node, 1..24 cores, for the problem suite.  The paper reports speedup
// >= 22 on 24 cores for most problems (2-arm bandit 22.35).
//
// The scaling curves come from the discrete-event simulator replaying the
// real tile schedule (see DESIGN.md): the shape — near-linear until the
// wavefront width binds — is the reproduction target.

#include "bench_util.hpp"

namespace {

using namespace dpgen;
using namespace dpgen::benchutil;

#ifdef DPGEN_BENCH_STANDALONE
struct Workload {
  const char* name;
  spec::ProblemSpec spec;
  Int n;
};

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  {
    spec::ProblemSpec s = problems::bandit2(8).spec;
    w.push_back({"bandit2", s, 255});
  }
  {
    spec::ProblemSpec s = problems::bandit3(6).spec;
    w.push_back({"bandit3", s, 60});
  }
  {
    // 3-sequence alignment shape (cube with the 7 subset deps).
    auto seqs = std::vector<std::string>{problems::random_dna(96, 1),
                                         problems::random_dna(96, 2),
                                         problems::random_dna(96, 3)};
    w.push_back({"msa3", problems::msa(seqs, 8).spec, 96});
  }
  {
    spec::ProblemSpec s = grid_spec(8);
    w.push_back({"lcs2-grid", s, 511});
  }
  return w;
}
#endif  // DPGEN_BENCH_STANDALONE

[[maybe_unused]] const bool registered = [] {
  register_bench("fig6/sim_bandit2_c24", [] {
    tiling::TilingModel model(problems::bandit2(8).spec);
    sim::ClusterConfig cfg;
    cfg.cores_per_node = 24;
    const auto t0 = std::chrono::steady_clock::now();
    auto r = sim::simulate(model, {255}, cfg);
    obs::BenchSample s;
    s.seconds = seconds_since(t0);
    s.metrics = {{"speedup", r.speedup()},
                 {"tiles", static_cast<double>(r.tiles)},
                 {"utilization", r.utilization}};
    return s;
  });
  return true;
}();

#ifdef DPGEN_BENCH_STANDALONE

void fig6_table() {
  header("FIG6", "shared-memory scaling: speedup vs cores on one node");
  std::printf("%-10s %-7s %-10s %-10s %-12s\n", "problem", "cores",
              "speedup", "eff", "makespan_s");
  for (auto& wl : workloads()) {
    tiling::TilingModel model(wl.spec);
    IntVec params;
    for (int i = 0; i < model.nparams(); ++i) params.push_back(wl.n);
    for (int cores : {1, 2, 4, 8, 12, 16, 20, 24}) {
      sim::ClusterConfig cfg;
      cfg.cores_per_node = cores;
      auto r = sim::simulate(model, params, cfg);
      std::printf("%-10s %-7d %-10.2f %-10.3f %-12.4f\n", wl.name, cores,
                  r.speedup(), r.efficiency(cores), r.makespan);
      json_record("fig6",
                  std::string(wl.name) + "/cores=" + std::to_string(cores),
                  r.makespan,
                  {{"speedup", r.speedup()},
                   {"efficiency", r.efficiency(cores)},
                   {"tiles", static_cast<double>(r.tiles)},
                   {"utilization", r.utilization}});
    }
  }
  std::printf(
      "# SPD1  paper: speedup >= 22 on 24 cores for most problems; "
      "2-arm bandit 22.35\n\n");
}

void BM_Simulate24Cores(benchmark::State& state) {
  tiling::TilingModel model(problems::bandit2(8).spec);
  sim::ClusterConfig cfg;
  cfg.cores_per_node = 24;
  for (auto _ : state) {
    auto r = sim::simulate(model, {static_cast<Int>(state.range(0))}, cfg);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_Simulate24Cores)->Arg(63)->Arg(127);

#endif  // DPGEN_BENCH_STANDALONE

}  // namespace

#ifdef DPGEN_BENCH_STANDALONE
int main(int argc, char** argv) {
  dpgen::benchutil::parse_json_flag(&argc, argv);
  fig6_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dpgen::benchutil::JsonSink::instance().flush();
  return 0;
}
#endif
