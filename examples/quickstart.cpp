// Quickstart: define a dynamic-programming recurrence, run it in parallel.
//
// The problem: count monotone lattice paths from (x, y) to (N, N).  The
// recurrence  f(x, y) = f(x+1, y) + f(x, y+1)  with base case 1 when no
// move is valid — a two-line "center loop".  f(0,0) = C(2N, N).
//
//   $ ./quickstart [N]
//
// This is the whole user experience the paper aims for: describe the
// iteration space, the template dependencies and the center code; the
// library tiles it, schedules tiles across ranks and threads, and hands
// back the answer.

#include <cstdio>
#include <cstdlib>

#include "engine/engine.hpp"
#include "tiling/model.hpp"

using namespace dpgen;

int main(int argc, char** argv) {
  const Int n = argc > 1 ? std::atoll(argv[1]) : 16;

  // 1. Describe the problem (paper section IV.A).
  spec::ProblemSpec spec;
  spec.name("lattice_paths")
      .params({"N"})
      .vars({"x", "y"})
      .constraint("x >= 0")
      .constraint("x <= N")
      .constraint("y >= 0")
      .constraint("y <= N")
      .dep("right", {1, 0})
      .dep("up", {0, 1})
      .load_balance({"x", "y"})
      .tile_widths({8, 8})
      .center_code(R"(
double v = 0.0; int any = 0;
if (is_valid_right) { v += V[loc_right]; any = 1; }
if (is_valid_up)    { v += V[loc_up];    any = 1; }
V[loc] = any ? v : 1.0;
)");

  // 2. Build the tiling model (extended system, tile space, edges, ...).
  tiling::TilingModel model(std::move(spec));

  // 3. Supply the same center loop as a callable and run it on 2 ranks x 2
  //    threads (ranks are the in-process MPI substitute).
  engine::EngineOptions opt;
  opt.ranks = 2;
  opt.threads = 2;
  opt.probes = {{0, 0}};
  auto result = engine::run(
      model, {n},
      [](const engine::Cell& c) {
        double v = 0.0;
        bool any = false;
        if (c.valid[0]) { v += c.V[c.loc_dep[0]]; any = true; }
        if (c.valid[1]) { v += c.V[c.loc_dep[1]]; any = true; }
        c.V[c.loc] = any ? v : 1.0;
      },
      opt);

  std::printf("lattice paths on the (%lld x %lld) grid: f(0,0) = %.17g\n",
              static_cast<long long>(n), static_cast<long long>(n),
              result.at({0, 0}));
  std::printf("tiles executed: %lld across %d ranks (%lld edge messages)\n",
              result.total(&runtime::RunStats::tiles_executed), opt.ranks,
              result.total(&runtime::RunStats::remote_edges));
  return 0;
}
