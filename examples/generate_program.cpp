// The generator command-line tool (the paper's deliverable): read a
// high-level problem description, write a complete hybrid OpenMP +
// message-passing C++ program.
//
//   $ ./generate_program --sample              # print a sample spec
//   $ ./generate_program spec.txt out.cpp      # generate a program
//   $ ./generate_program                       # demo: sample -> bandit2.gen.cpp
//
// Compile the output with:
//   c++ -std=c++20 -O2 -fopenmp -DDPGEN_RUNTIME_USE_OPENMP \
//       -I<repo>/src out.cpp libdpgen_runtime.a libdpgen_minimpi.a \
//       libdpgen_obs.a libdpgen_support.a -lpthread -o solver
//   ./solver <params...> [--ranks=R] [--threads=T] [--trace=FILE]
//            [--metrics=FILE] [--report=FILE]
// --report writes the attributed performance report (critical path,
// Ehrhart-vs-measured load balance, comm matrix — docs/observability.md).

#include <cstdio>
#include <cstring>

#include "codegen/generator.hpp"
#include "spec/parser.hpp"

using namespace dpgen;

namespace {

constexpr const char* kSampleSpec = R"(# 2-arm Bernoulli bandit (paper Fig. 1)
problem bandit2
params N
vars s1 f1 s2 f2
array V double

constraints {
  s1 >= 0
  f1 >= 0
  s2 >= 0
  f2 >= 0
  s1 + f1 + s2 + f2 <= N
}

dep r1 = (1, 0, 0, 0)
dep r2 = (0, 1, 0, 0)
dep r3 = (0, 0, 1, 0)
dep r4 = (0, 0, 0, 1)

loadbalance s1 f1
tilewidths 8 8 8 8

center {{{
if (is_valid_r1 && is_valid_r2 && is_valid_r3 && is_valid_r4) {
  double p1 = (double)(s1 + 1) / (double)(s1 + f1 + 2);
  double p2 = (double)(s2 + 1) / (double)(s2 + f2 + 2);
  double v1 = p1 * (1.0 + V[loc_r1]) + (1.0 - p1) * V[loc_r2];
  double v2 = p2 * (1.0 + V[loc_r3]) + (1.0 - p2) * V[loc_r4];
  V[loc] = v1 > v2 ? v1 : v2;
} else {
  V[loc] = 0.0;
}
}}}
)";

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--sample") == 0) {
    std::fputs(kSampleSpec, stdout);
    return 0;
  }

  try {
    spec::ProblemSpec spec;
    std::string out_path;
    codegen::GenOptions gen_opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--passes=", 9) == 0) {
        // Codegen optimization pipeline (docs/codegen.md):
        //   --passes=none | full | canonicalize,unroll:4,layout
        gen_opt.passes = codegen::PassPipeline::parse(argv[i] + 9);
      } else if (std::strncmp(argv[i], "--probe=", 8) == 0) {
        // --probe=1,2,3 adds a location whose value the program prints.
        IntVec point;
        const char* p = argv[i] + 8;
        while (*p) {
          char* end = nullptr;
          point.push_back(std::strtoll(p, &end, 10));
          p = (*end == ',') ? end + 1 : end;
        }
        gen_opt.probes.push_back(std::move(point));
      } else {
        positional.emplace_back(argv[i]);
      }
    }
    if (positional.size() == 2) {
      spec = spec::parse_spec_file(positional[0]);
      out_path = positional[1];
    } else if (positional.empty()) {
      std::printf("no spec given; generating the sample 2-arm bandit\n");
      spec = spec::parse_spec(kSampleSpec);
      out_path = "bandit2.gen.cpp";
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sample | <spec.txt> <out.cpp> "
                   "[--probe=c1,c2,...] [--passes=none|full|LIST]]\n",
                   argv[0]);
      return 2;
    }

    tiling::TilingModel model(std::move(spec));
    codegen::write_program(model, out_path, gen_opt);
    std::printf("wrote %s (problem '%s', %d dimensions, %d tile edges)\n",
                out_path.c_str(), model.problem().problem_name().c_str(),
                model.dim(), model.num_edges());
    std::printf("compile: c++ -std=c++20 -O2 -fopenmp "
                "-DDPGEN_RUNTIME_USE_OPENMP -I<repo>/src %s "
                "libdpgen_runtime.a libdpgen_minimpi.a libdpgen_obs.a "
                "libdpgen_support.a -lpthread -o solver\n",
                out_path.c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
