// Exact multiple sequence alignment (paper section I).
//
// Aligns three synthetic DNA sequences exactly with the tiled parallel
// engine (sum-of-pairs score), and compares against the cheap pairwise
// lower bound: the sum of the three optimal pairwise alignment costs is a
// lower bound on the exact 3-way cost, and heuristic (star/progressive)
// aligners can only sit above the exact value.  The gap between bound,
// exact and heuristic is why the paper cares about making exact
// multidimensional DP affordable.
//
//   $ ./sequence_alignment [length]

#include <cstdio>
#include <cstdlib>

#include "problems/problems.hpp"

using namespace dpgen;

namespace {

double align_exact(const std::vector<std::string>& seqs, int ranks) {
  problems::Problem p = problems::msa(seqs, 6);
  tiling::TilingModel model(p.spec);
  engine::EngineOptions opt;
  opt.ranks = ranks;
  opt.threads = 2;
  opt.probes = {p.objective};
  return engine::run(model, problems::sequence_params(seqs), p.kernel, opt)
      .at(p.objective);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t len = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 28;

  std::vector<std::string> seqs{problems::random_dna(len, 101),
                                problems::random_dna(len + 3, 202),
                                problems::random_dna(len - 2, 303)};
  std::printf("sequences:\n");
  for (const auto& s : seqs) std::printf("  %s\n", s.c_str());

  // Pairwise optimal costs (2-way MSA) -> sum-of-pairs lower bound.
  double bound = 0.0;
  for (int i = 0; i < 3; ++i)
    for (int j = i + 1; j < 3; ++j)
      bound += align_exact({seqs[static_cast<std::size_t>(i)],
                            seqs[static_cast<std::size_t>(j)]},
                           1);

  double exact = align_exact(seqs, 2);

  std::printf("\npairwise lower bound (sum of optimal pair costs): %.1f\n",
              bound);
  std::printf("exact 3-way sum-of-pairs cost:                    %.1f\n",
              exact);
  std::printf("tightness: exact is %.1f%% above the bound\n",
              100.0 * (exact - bound) / bound);
  std::printf(
      "\nThe exact 3-dimensional DP has %lld locations; the tiled engine\n"
      "computed it in parallel without materialising the full cube.\n",
      static_cast<long long>((len + 1) * (len + 4) * (len - 1)));
  return 0;
}
