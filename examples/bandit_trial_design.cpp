// Adaptive clinical-trial design with Bernoulli bandits (paper section I).
//
// Each treatment arm is a Bernoulli bandit arm; solving the bandit DP
// yields the maximal expected number of treatment successes over N
// patients when allocation adapts to observed outcomes.  The baseline is
// the classic fixed (equal-allocation) design whose expected successes are
// N/2 under the uniform prior.  The "adaptive gain" is what the paper's
// motivation is about: adaptive trials treat more patients successfully
// with the same sample size.
//
//   $ ./bandit_trial_design [N_max]

#include <cstdio>
#include <cstdlib>

#include "problems/problems.hpp"

using namespace dpgen;

int main(int argc, char** argv) {
  const Int n_max = argc > 1 ? std::atoll(argv[1]) : 24;

  problems::Problem two = problems::bandit2(6);
  problems::Problem three = problems::bandit3(4);
  tiling::TilingModel model2(two.spec);
  tiling::TilingModel model3(three.spec);

  std::printf("Expected successes over N patients (uniform priors)\n");
  std::printf("%-6s %-12s %-12s %-12s %-14s\n", "N", "fixed", "adaptive-2",
              "adaptive-3", "gain-2 (pts)");
  for (Int n = 4; n <= n_max; n += 4) {
    engine::EngineOptions opt;
    opt.ranks = 2;
    opt.threads = 2;

    opt.probes = {two.objective};
    double v2 = engine::run(model2, {n}, two.kernel, opt).at(two.objective);

    double v3 = 0.0;
    if (n <= 16) {  // 6-dimensional space: keep the demo snappy
      opt.probes = {three.objective};
      v3 = engine::run(model3, {n}, three.kernel, opt).at(three.objective);
    }

    double fixed = static_cast<double>(n) / 2.0;
    if (n <= 16)
      std::printf("%-6lld %-12.3f %-12.4f %-12.4f %-+14.4f\n",
                  static_cast<long long>(n), fixed, v2, v3, v2 - fixed);
    else
      std::printf("%-6lld %-12.3f %-12.4f %-12s %-+14.4f\n",
                  static_cast<long long>(n), fixed, v2, "-", v2 - fixed);
  }
  std::printf(
      "\nAdaptive allocation always beats the fixed design, and a third\n"
      "arm (more options to learn about) only helps - the ethical case\n"
      "for adaptive clinical trials the paper cites.\n");
  return 0;
}
