// Solution recovery in action (paper section VII.A): reconstruct an actual
// optimal alignment, not just its score.
//
// A normal run only keeps the objective value — the iteration space is
// discarded tile by tile.  engine::Recovery keeps the packed tile edges
// (O(n^(d-1)) memory) and recomputes tiles on demand, so a traceback can
// walk value queries from the origin to the base cases.
//
//   $ ./alignment_traceback [length]

#include <cstdio>
#include <cstdlib>

#include "engine/recovery.hpp"
#include "problems/problems.hpp"

using namespace dpgen;

int main(int argc, char** argv) {
  const std::size_t len = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40;
  std::vector<std::string> seqs{problems::random_dna(len, 11),
                                problems::random_dna(len + 5, 22)};
  problems::Problem p = problems::lcs(seqs, 8);
  tiling::TilingModel model(p.spec);
  IntVec params = problems::sequence_params(seqs);

  engine::EngineOptions opt;
  opt.ranks = 2;
  opt.threads = 2;
  engine::Recovery rec(model, params, p.kernel, opt);

  double total = rec.value_at({0, 0});
  std::printf("sequences:\n  %s\n  %s\n", seqs[0].c_str(), seqs[1].c_str());
  std::printf("LCS length: %.0f\n", total);

  // Traceback: follow moves consistent with the DP values.
  std::string lcs;
  Int i = 0, j = 0;
  while (i < params[0] && j < params[1] && rec.value_at({i, j}) > 0.0) {
    double here = rec.value_at({i, j});
    if (seqs[0][static_cast<std::size_t>(i)] ==
            seqs[1][static_cast<std::size_t>(j)] &&
        rec.value_at({i + 1, j + 1}) == here - 1.0) {
      lcs += seqs[0][static_cast<std::size_t>(i)];
      ++i;
      ++j;
    } else if (rec.value_at({i + 1, j}) == here) {
      ++i;
    } else {
      ++j;
    }
  }
  std::printf("one optimal subsequence: %s\n", lcs.c_str());
  std::printf(
      "traceback recomputed %lld of %lld tiles from %lld saved edges\n",
      rec.tiles_recomputed(),
      static_cast<long long>(model.total_tiles(params)),
      rec.edges_stored());
  return 0;
}
