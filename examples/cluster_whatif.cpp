// What-if cluster sizing with the discrete-event simulator.
//
// Before buying node-hours, predict how a problem will scale: the
// simulator replays the exact tile schedule (same priority, same load
// balancer, same communication pattern as a generated program) under a
// configurable machine model.
//
//   $ ./cluster_whatif                  # 2-arm bandit, N=127
//   $ ./cluster_whatif spec.txt N ...   # your own problem + parameters

#include <cstdio>
#include <cstdlib>

#include <cstring>

#include "problems/problems.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/svg.hpp"
#include "sim/tune.hpp"
#include "spec/parser.hpp"

using namespace dpgen;

int main(int argc, char** argv) {
  spec::ProblemSpec spec;
  IntVec params;
  std::string svg_path;
  try {
    // --svg=<path> renders an execution-timeline SVG of the 4x8 run.
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
      if (std::strncmp(argv[i], "--svg=", 6) == 0)
        svg_path = argv[i] + 6;
      else
        args.push_back(argv[i]);
    }
    argc = static_cast<int>(args.size());
    argv = args.data();
    if (argc >= 2) {
      spec = spec::parse_spec_file(argv[1]);
      for (int i = 2; i < argc; ++i) params.push_back(std::atoll(argv[i]));
    } else {
      spec = problems::bandit2(8).spec;
      params = {127};
    }
    if (static_cast<int>(params.size()) !=
        static_cast<int>(spec.param_names().size())) {
      std::fprintf(stderr, "expected %zu parameter values\n",
                   spec.param_names().size());
      return 2;
    }

    tiling::TilingModel model(std::move(spec));
    std::printf("problem '%s': %lld locations, %lld tiles\n",
                model.problem().problem_name().c_str(),
                static_cast<long long>(model.total_cells(params)),
                static_cast<long long>(model.total_tiles(params)));
    std::printf("%-7s %-7s %-12s %-10s %-10s %-12s\n", "nodes", "cores",
                "makespan_s", "speedup", "eff", "msgs");
    for (int nodes : {1, 2, 4, 8, 16}) {
      for (int cores : {8, 24}) {
        sim::ClusterConfig cfg;
        cfg.nodes = nodes;
        cfg.cores_per_node = cores;
        cfg.record_timeline = !svg_path.empty() && nodes == 4 && cores == 8;
        auto r = sim::simulate(model, params, cfg);
        std::printf("%-7d %-7d %-12.4f %-10.2f %-10.3f %-12lld\n", nodes,
                    cores, r.makespan, r.speedup(),
                    r.efficiency(nodes * cores), r.remote_messages);
        if (cfg.record_timeline) {
          sim::write_timeline_svg(r, svg_path);
          std::printf("        (timeline of this run written to %s)\n",
                      svg_path.c_str());
        }
      }
    }
    std::printf("\n(absolute seconds assume %.0f ns per location; shapes "
                "are what matter)\n", 1000.0);

    // Tile-width autotuning (the parameter sweep of paper VI.C) for the
    // built-in demo problem.
    if (argc < 2) {
      std::printf("\ntile-width sweep (8 nodes x 8 cores):\n");
      sim::ClusterConfig cfg;
      cfg.nodes = 8;
      cfg.cores_per_node = 8;
      cfg.tile_overhead_sec = 2e-5;
      cfg.link_latency_sec = 2e-4;
      auto sweep = sim::sweep_widths(
          [](Int w) { return problems::bandit2(w).spec; },
          {2, 4, 6, 8, 12}, params, cfg);
      for (const auto& r : sweep)
        std::printf("  width %-4lld makespan %.4f s\n",
                    static_cast<long long>(r.width), r.result.makespan);
      std::printf("  -> best width: %lld\n",
                  static_cast<long long>(sim::best_width(sweep)));
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
