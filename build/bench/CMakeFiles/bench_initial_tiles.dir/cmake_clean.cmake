file(REMOVE_RECURSE
  "CMakeFiles/bench_initial_tiles.dir/bench_initial_tiles.cpp.o"
  "CMakeFiles/bench_initial_tiles.dir/bench_initial_tiles.cpp.o.d"
  "bench_initial_tiles"
  "bench_initial_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_initial_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
