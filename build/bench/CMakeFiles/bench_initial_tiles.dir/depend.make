# Empty dependencies file for bench_initial_tiles.
# This may be replaced when dependencies are built.
