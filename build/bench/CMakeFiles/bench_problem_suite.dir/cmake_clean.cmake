file(REMOVE_RECURSE
  "CMakeFiles/bench_problem_suite.dir/bench_problem_suite.cpp.o"
  "CMakeFiles/bench_problem_suite.dir/bench_problem_suite.cpp.o.d"
  "bench_problem_suite"
  "bench_problem_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_problem_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
