# Empty dependencies file for bench_problem_suite.
# This may be replaced when dependencies are built.
