file(REMOVE_RECURSE
  "CMakeFiles/bench_pending_memory.dir/bench_pending_memory.cpp.o"
  "CMakeFiles/bench_pending_memory.dir/bench_pending_memory.cpp.o.d"
  "bench_pending_memory"
  "bench_pending_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pending_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
