# Empty dependencies file for bench_pending_memory.
# This may be replaced when dependencies are built.
