# Empty compiler generated dependencies file for bench_tilewidth_sweep.
# This may be replaced when dependencies are built.
