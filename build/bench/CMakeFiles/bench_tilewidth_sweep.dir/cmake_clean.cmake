file(REMOVE_RECURSE
  "CMakeFiles/bench_tilewidth_sweep.dir/bench_tilewidth_sweep.cpp.o"
  "CMakeFiles/bench_tilewidth_sweep.dir/bench_tilewidth_sweep.cpp.o.d"
  "bench_tilewidth_sweep"
  "bench_tilewidth_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tilewidth_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
