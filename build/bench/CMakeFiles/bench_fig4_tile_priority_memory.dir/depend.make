# Empty dependencies file for bench_fig4_tile_priority_memory.
# This may be replaced when dependencies are built.
