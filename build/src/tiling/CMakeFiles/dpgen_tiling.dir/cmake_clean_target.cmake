file(REMOVE_RECURSE
  "libdpgen_tiling.a"
)
