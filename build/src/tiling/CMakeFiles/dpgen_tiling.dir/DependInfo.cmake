
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tiling/balance.cpp" "src/tiling/CMakeFiles/dpgen_tiling.dir/balance.cpp.o" "gcc" "src/tiling/CMakeFiles/dpgen_tiling.dir/balance.cpp.o.d"
  "/root/repo/src/tiling/model.cpp" "src/tiling/CMakeFiles/dpgen_tiling.dir/model.cpp.o" "gcc" "src/tiling/CMakeFiles/dpgen_tiling.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/dpgen_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/dpgen_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpgen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
