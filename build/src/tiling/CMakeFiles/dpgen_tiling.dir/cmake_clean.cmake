file(REMOVE_RECURSE
  "CMakeFiles/dpgen_tiling.dir/balance.cpp.o"
  "CMakeFiles/dpgen_tiling.dir/balance.cpp.o.d"
  "CMakeFiles/dpgen_tiling.dir/model.cpp.o"
  "CMakeFiles/dpgen_tiling.dir/model.cpp.o.d"
  "libdpgen_tiling.a"
  "libdpgen_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpgen_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
