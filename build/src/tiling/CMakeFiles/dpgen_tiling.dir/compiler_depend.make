# Empty compiler generated dependencies file for dpgen_tiling.
# This may be replaced when dependencies are built.
