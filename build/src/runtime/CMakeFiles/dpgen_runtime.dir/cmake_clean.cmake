file(REMOVE_RECURSE
  "CMakeFiles/dpgen_runtime.dir/order.cpp.o"
  "CMakeFiles/dpgen_runtime.dir/order.cpp.o.d"
  "libdpgen_runtime.a"
  "libdpgen_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpgen_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
