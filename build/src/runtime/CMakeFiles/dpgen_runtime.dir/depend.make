# Empty dependencies file for dpgen_runtime.
# This may be replaced when dependencies are built.
