file(REMOVE_RECURSE
  "libdpgen_runtime.a"
)
