file(REMOVE_RECURSE
  "libdpgen_minimpi.a"
)
