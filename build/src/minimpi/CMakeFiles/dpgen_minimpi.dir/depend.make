# Empty dependencies file for dpgen_minimpi.
# This may be replaced when dependencies are built.
