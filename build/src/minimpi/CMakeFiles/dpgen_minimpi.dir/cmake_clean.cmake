file(REMOVE_RECURSE
  "CMakeFiles/dpgen_minimpi.dir/world.cpp.o"
  "CMakeFiles/dpgen_minimpi.dir/world.cpp.o.d"
  "libdpgen_minimpi.a"
  "libdpgen_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpgen_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
