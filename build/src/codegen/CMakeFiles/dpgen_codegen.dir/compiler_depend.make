# Empty compiler generated dependencies file for dpgen_codegen.
# This may be replaced when dependencies are built.
