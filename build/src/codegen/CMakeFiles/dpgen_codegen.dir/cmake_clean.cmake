file(REMOVE_RECURSE
  "CMakeFiles/dpgen_codegen.dir/emit.cpp.o"
  "CMakeFiles/dpgen_codegen.dir/emit.cpp.o.d"
  "CMakeFiles/dpgen_codegen.dir/generator.cpp.o"
  "CMakeFiles/dpgen_codegen.dir/generator.cpp.o.d"
  "libdpgen_codegen.a"
  "libdpgen_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpgen_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
