file(REMOVE_RECURSE
  "libdpgen_codegen.a"
)
