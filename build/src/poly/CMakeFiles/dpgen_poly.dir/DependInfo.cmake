
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poly/count.cpp" "src/poly/CMakeFiles/dpgen_poly.dir/count.cpp.o" "gcc" "src/poly/CMakeFiles/dpgen_poly.dir/count.cpp.o.d"
  "/root/repo/src/poly/ehrhart.cpp" "src/poly/CMakeFiles/dpgen_poly.dir/ehrhart.cpp.o" "gcc" "src/poly/CMakeFiles/dpgen_poly.dir/ehrhart.cpp.o.d"
  "/root/repo/src/poly/fm.cpp" "src/poly/CMakeFiles/dpgen_poly.dir/fm.cpp.o" "gcc" "src/poly/CMakeFiles/dpgen_poly.dir/fm.cpp.o.d"
  "/root/repo/src/poly/linexpr.cpp" "src/poly/CMakeFiles/dpgen_poly.dir/linexpr.cpp.o" "gcc" "src/poly/CMakeFiles/dpgen_poly.dir/linexpr.cpp.o.d"
  "/root/repo/src/poly/loopnest.cpp" "src/poly/CMakeFiles/dpgen_poly.dir/loopnest.cpp.o" "gcc" "src/poly/CMakeFiles/dpgen_poly.dir/loopnest.cpp.o.d"
  "/root/repo/src/poly/parse.cpp" "src/poly/CMakeFiles/dpgen_poly.dir/parse.cpp.o" "gcc" "src/poly/CMakeFiles/dpgen_poly.dir/parse.cpp.o.d"
  "/root/repo/src/poly/system.cpp" "src/poly/CMakeFiles/dpgen_poly.dir/system.cpp.o" "gcc" "src/poly/CMakeFiles/dpgen_poly.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dpgen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
