# Empty compiler generated dependencies file for dpgen_poly.
# This may be replaced when dependencies are built.
