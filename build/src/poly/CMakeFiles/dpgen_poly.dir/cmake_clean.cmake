file(REMOVE_RECURSE
  "CMakeFiles/dpgen_poly.dir/count.cpp.o"
  "CMakeFiles/dpgen_poly.dir/count.cpp.o.d"
  "CMakeFiles/dpgen_poly.dir/ehrhart.cpp.o"
  "CMakeFiles/dpgen_poly.dir/ehrhart.cpp.o.d"
  "CMakeFiles/dpgen_poly.dir/fm.cpp.o"
  "CMakeFiles/dpgen_poly.dir/fm.cpp.o.d"
  "CMakeFiles/dpgen_poly.dir/linexpr.cpp.o"
  "CMakeFiles/dpgen_poly.dir/linexpr.cpp.o.d"
  "CMakeFiles/dpgen_poly.dir/loopnest.cpp.o"
  "CMakeFiles/dpgen_poly.dir/loopnest.cpp.o.d"
  "CMakeFiles/dpgen_poly.dir/parse.cpp.o"
  "CMakeFiles/dpgen_poly.dir/parse.cpp.o.d"
  "CMakeFiles/dpgen_poly.dir/system.cpp.o"
  "CMakeFiles/dpgen_poly.dir/system.cpp.o.d"
  "libdpgen_poly.a"
  "libdpgen_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpgen_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
