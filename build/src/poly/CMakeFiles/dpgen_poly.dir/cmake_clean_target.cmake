file(REMOVE_RECURSE
  "libdpgen_poly.a"
)
