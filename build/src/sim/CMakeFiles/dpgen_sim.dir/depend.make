# Empty dependencies file for dpgen_sim.
# This may be replaced when dependencies are built.
