file(REMOVE_RECURSE
  "CMakeFiles/dpgen_sim.dir/cluster_sim.cpp.o"
  "CMakeFiles/dpgen_sim.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/dpgen_sim.dir/svg.cpp.o"
  "CMakeFiles/dpgen_sim.dir/svg.cpp.o.d"
  "CMakeFiles/dpgen_sim.dir/tune.cpp.o"
  "CMakeFiles/dpgen_sim.dir/tune.cpp.o.d"
  "libdpgen_sim.a"
  "libdpgen_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpgen_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
