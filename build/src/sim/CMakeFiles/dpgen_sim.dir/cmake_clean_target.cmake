file(REMOVE_RECURSE
  "libdpgen_sim.a"
)
