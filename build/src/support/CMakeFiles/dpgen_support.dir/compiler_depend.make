# Empty compiler generated dependencies file for dpgen_support.
# This may be replaced when dependencies are built.
