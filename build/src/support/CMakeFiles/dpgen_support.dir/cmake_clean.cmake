file(REMOVE_RECURSE
  "CMakeFiles/dpgen_support.dir/error.cpp.o"
  "CMakeFiles/dpgen_support.dir/error.cpp.o.d"
  "CMakeFiles/dpgen_support.dir/str.cpp.o"
  "CMakeFiles/dpgen_support.dir/str.cpp.o.d"
  "libdpgen_support.a"
  "libdpgen_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpgen_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
