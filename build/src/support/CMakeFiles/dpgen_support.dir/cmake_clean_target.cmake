file(REMOVE_RECURSE
  "libdpgen_support.a"
)
