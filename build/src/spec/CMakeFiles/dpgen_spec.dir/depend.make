# Empty dependencies file for dpgen_spec.
# This may be replaced when dependencies are built.
