file(REMOVE_RECURSE
  "libdpgen_spec.a"
)
