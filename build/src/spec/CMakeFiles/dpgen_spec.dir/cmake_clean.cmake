file(REMOVE_RECURSE
  "CMakeFiles/dpgen_spec.dir/parser.cpp.o"
  "CMakeFiles/dpgen_spec.dir/parser.cpp.o.d"
  "CMakeFiles/dpgen_spec.dir/problem_spec.cpp.o"
  "CMakeFiles/dpgen_spec.dir/problem_spec.cpp.o.d"
  "libdpgen_spec.a"
  "libdpgen_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpgen_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
