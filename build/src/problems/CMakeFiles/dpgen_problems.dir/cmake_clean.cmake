file(REMOVE_RECURSE
  "CMakeFiles/dpgen_problems.dir/affine_align.cpp.o"
  "CMakeFiles/dpgen_problems.dir/affine_align.cpp.o.d"
  "CMakeFiles/dpgen_problems.dir/bandit.cpp.o"
  "CMakeFiles/dpgen_problems.dir/bandit.cpp.o.d"
  "CMakeFiles/dpgen_problems.dir/lattice.cpp.o"
  "CMakeFiles/dpgen_problems.dir/lattice.cpp.o.d"
  "CMakeFiles/dpgen_problems.dir/sequences.cpp.o"
  "CMakeFiles/dpgen_problems.dir/sequences.cpp.o.d"
  "libdpgen_problems.a"
  "libdpgen_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpgen_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
