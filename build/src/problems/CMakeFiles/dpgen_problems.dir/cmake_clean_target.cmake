file(REMOVE_RECURSE
  "libdpgen_problems.a"
)
