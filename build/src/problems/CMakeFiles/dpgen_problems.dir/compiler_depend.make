# Empty compiler generated dependencies file for dpgen_problems.
# This may be replaced when dependencies are built.
