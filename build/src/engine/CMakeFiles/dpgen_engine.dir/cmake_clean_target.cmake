file(REMOVE_RECURSE
  "libdpgen_engine.a"
)
