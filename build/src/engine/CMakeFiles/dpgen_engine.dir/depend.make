# Empty dependencies file for dpgen_engine.
# This may be replaced when dependencies are built.
