# Empty compiler generated dependencies file for dpgen_engine.
# This may be replaced when dependencies are built.
