file(REMOVE_RECURSE
  "CMakeFiles/dpgen_engine.dir/decisions.cpp.o"
  "CMakeFiles/dpgen_engine.dir/decisions.cpp.o.d"
  "CMakeFiles/dpgen_engine.dir/engine.cpp.o"
  "CMakeFiles/dpgen_engine.dir/engine.cpp.o.d"
  "CMakeFiles/dpgen_engine.dir/interpret.cpp.o"
  "CMakeFiles/dpgen_engine.dir/interpret.cpp.o.d"
  "CMakeFiles/dpgen_engine.dir/recovery.cpp.o"
  "CMakeFiles/dpgen_engine.dir/recovery.cpp.o.d"
  "CMakeFiles/dpgen_engine.dir/serial.cpp.o"
  "CMakeFiles/dpgen_engine.dir/serial.cpp.o.d"
  "libdpgen_engine.a"
  "libdpgen_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpgen_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
