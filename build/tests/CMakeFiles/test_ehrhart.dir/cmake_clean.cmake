file(REMOVE_RECURSE
  "CMakeFiles/test_ehrhart.dir/test_ehrhart.cpp.o"
  "CMakeFiles/test_ehrhart.dir/test_ehrhart.cpp.o.d"
  "test_ehrhart"
  "test_ehrhart.pdb"
  "test_ehrhart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ehrhart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
