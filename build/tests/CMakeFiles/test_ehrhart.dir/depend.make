# Empty dependencies file for test_ehrhart.
# This may be replaced when dependencies are built.
