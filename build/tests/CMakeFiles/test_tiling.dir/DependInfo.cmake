
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tiling.cpp" "tests/CMakeFiles/test_tiling.dir/test_tiling.cpp.o" "gcc" "tests/CMakeFiles/test_tiling.dir/test_tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tiling/CMakeFiles/dpgen_tiling.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/dpgen_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/dpgen_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpgen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
