# Empty dependencies file for test_tiling_properties.
# This may be replaced when dependencies are built.
