file(REMOVE_RECURSE
  "CMakeFiles/test_tiling_properties.dir/test_tiling_properties.cpp.o"
  "CMakeFiles/test_tiling_properties.dir/test_tiling_properties.cpp.o.d"
  "test_tiling_properties"
  "test_tiling_properties.pdb"
  "test_tiling_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiling_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
