# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_poly[1]_include.cmake")
include("/root/repo/build/tests/test_ehrhart[1]_include.cmake")
include("/root/repo/build/tests/test_spec[1]_include.cmake")
include("/root/repo/build/tests/test_tiling[1]_include.cmake")
include("/root/repo/build/tests/test_minimpi[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_problems[1]_include.cmake")
include("/root/repo/build/tests/test_tiling_properties[1]_include.cmake")
include("/root/repo/build/tests/test_reproduction[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_codegen_fuzz[1]_include.cmake")
