# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "10")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bandit_trial_design "/root/repo/build/examples/bandit_trial_design" "8")
set_tests_properties(example_bandit_trial_design PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sequence_alignment "/root/repo/build/examples/sequence_alignment" "14")
set_tests_properties(example_sequence_alignment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_alignment_traceback "/root/repo/build/examples/alignment_traceback" "20")
set_tests_properties(example_alignment_traceback PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_generate_sample "/root/repo/build/examples/generate_program" "--sample")
set_tests_properties(example_generate_sample PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_generate_program "/root/repo/build/examples/generate_program")
set_tests_properties(example_generate_program PROPERTIES  WORKING_DIRECTORY "/root/repo/build/examples" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
