# Empty dependencies file for generate_program.
# This may be replaced when dependencies are built.
