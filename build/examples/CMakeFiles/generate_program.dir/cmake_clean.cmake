file(REMOVE_RECURSE
  "CMakeFiles/generate_program.dir/generate_program.cpp.o"
  "CMakeFiles/generate_program.dir/generate_program.cpp.o.d"
  "generate_program"
  "generate_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
