file(REMOVE_RECURSE
  "CMakeFiles/bandit_trial_design.dir/bandit_trial_design.cpp.o"
  "CMakeFiles/bandit_trial_design.dir/bandit_trial_design.cpp.o.d"
  "bandit_trial_design"
  "bandit_trial_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandit_trial_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
