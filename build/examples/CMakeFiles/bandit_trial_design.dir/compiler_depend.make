# Empty compiler generated dependencies file for bandit_trial_design.
# This may be replaced when dependencies are built.
