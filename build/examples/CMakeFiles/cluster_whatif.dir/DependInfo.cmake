
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cluster_whatif.cpp" "examples/CMakeFiles/cluster_whatif.dir/cluster_whatif.cpp.o" "gcc" "examples/CMakeFiles/cluster_whatif.dir/cluster_whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dpgen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/dpgen_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dpgen_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/tiling/CMakeFiles/dpgen_tiling.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dpgen_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/dpgen_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/dpgen_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/dpgen_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dpgen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
