file(REMOVE_RECURSE
  "CMakeFiles/alignment_traceback.dir/alignment_traceback.cpp.o"
  "CMakeFiles/alignment_traceback.dir/alignment_traceback.cpp.o.d"
  "alignment_traceback"
  "alignment_traceback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alignment_traceback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
