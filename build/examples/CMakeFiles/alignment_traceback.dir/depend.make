# Empty dependencies file for alignment_traceback.
# This may be replaced when dependencies are built.
