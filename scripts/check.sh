#!/usr/bin/env bash
# Full local verification: configure, build, run the test suite and the
# figure-reproduction benches, then three extra build flavours —
#   * ThreadSanitizer over the concurrency-heavy suites (the runtime,
#     comm layer and tracer are lock-free on their hot paths),
#   * a -DDPGEN_TRACE=0 build proving the tracing macro path compiles
#     and the suite still passes with every span compiled out,
#   * a Release (-O2 -DNDEBUG) build-and-bench smoke: bench_hotpath with
#     --json, archived under bench-archive/ — the numbers BENCH_hotpath.json
#     tracks across commits,
#   * the continuous-benchmarking gate: dpgen-bench runs a quick subset,
#     validates the emitted dpgen.bench.v1 document, archives the run,
#     gates it against the per-machine auto-baseline (established on the
#     first run), and self-tests that an injected 4x slowdown fires.
# Usage: scripts/check.sh [--quick]   (--quick skips benches and flavours)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "==== analyzer smoke (--report + dpgen-analyze + schema validation)"
# Two bundled problems through the full report pipeline: engine run with
# --report/--trace-out, the exported trace re-ingested by dpgen-analyze,
# and every produced report validated against tools/report_schema.json.
rm -rf build/analyze-smoke && mkdir -p build/analyze-smoke
for p in "bandit2:12" "lcs:64,64"; do
  name="${p%%:*}"; params="${p#*:}"
  build/tools/dpgen-analyze --problem="$name" --params="$params" \
    --ranks=2 --threads=2 \
    --report="build/analyze-smoke/${name}.json" \
    --trace-out="build/analyze-smoke/${name}.trace.json" > /dev/null
  build/tools/dpgen-analyze --trace="build/analyze-smoke/${name}.trace.json" \
    --problem="$name" --params="$params" \
    --report="build/analyze-smoke/${name}.retrace.json" > /dev/null
  build/tools/dpgen-analyze \
    --validate="build/analyze-smoke/${name}.json" \
    --schema=tools/report_schema.json
  build/tools/dpgen-analyze \
    --validate="build/analyze-smoke/${name}.retrace.json" \
    --schema=tools/report_schema.json
done
build/tools/dpgen-analyze --problem=lcs --params=64,64 --sim \
  --nodes=4 --cores=2 --report=build/analyze-smoke/lcs.sim.json > /dev/null
build/tools/dpgen-analyze --validate=build/analyze-smoke/lcs.sim.json \
  --schema=tools/report_schema.json

echo "==== live-monitor smoke (dpgen-top + events schema)"
# Balanced engine run through the run monitor: the event log must validate
# against tools/events_schema.json, contain at least one heartbeat, and —
# since the workload is balanced — flag no stragglers.
rm -rf build/monitor-smoke && mkdir -p build/monitor-smoke
build/tools/dpgen-top --problem=lcs --params=96,96 --ranks=2 --threads=2 \
  --interval=0.005 --events=build/monitor-smoke/lcs.jsonl --check \
  | tee build/monitor-smoke/lcs.summary
awk '{ for (i = 1; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] } }
     END { exit !(v["heartbeats"] >= 1 && v["stragglers"] == 0) }' \
  build/monitor-smoke/lcs.summary
build/tools/dpgen-analyze --events=build/monitor-smoke/lcs.jsonl \
  --schema=tools/events_schema.json > /dev/null
# Skewed simulated fleet: the online detector must name the slowed node.
build/tools/dpgen-top --problem=lcs --params=96,96 --sim --nodes=2 \
  --cores=2 --slow-node=1:4 --events=build/monitor-smoke/skew.jsonl \
  --check 2> build/monitor-smoke/skew.err
grep -q "straggler: node 1" build/monitor-smoke/skew.err
build/tools/dpgen-analyze --events=build/monitor-smoke/skew.jsonl \
  --schema=tools/events_schema.json > /dev/null
echo "live-monitor smoke passed"

echo "==== continuous-profiling smoke (sampler + cost model + cross-check)"
# A profiled engine run must emit a dpgen.profile.v1 document that (a)
# validates through the schema registry (no --schema: resolved from the
# document's own id), (b) prints a cost table, (c) cross-checks busy-time
# shares within 15 points of the span-attribution report (exit 1 on
# mismatch), and (d) renders a non-empty flame view.  Works without
# perf-event access: the profiler degrades to the cputime channel on its
# own.  512x512 at ~5 kHz gives enough samples (>100) that the shares
# are statistically stable.
rm -rf build/profile-smoke && mkdir -p build/profile-smoke
build/tools/dpgen-analyze --problem=lcs --params=512,512 \
  --ranks=2 --threads=2 --profile-hz=5003 \
  --profile-out=build/profile-smoke/lcs.prof.json \
  --report=build/profile-smoke/lcs.report.json > /dev/null
build/tools/dpgen-analyze --validate=build/profile-smoke/lcs.prof.json
build/tools/dpgen-analyze --profile=build/profile-smoke/lcs.prof.json \
  --report=build/profile-smoke/lcs.report.json \
  --flame=build/profile-smoke/lcs.flame.html
test -s build/profile-smoke/lcs.flame.html
# Synthetic profile from the simulator's DES time, same document format.
build/tools/dpgen-analyze --problem=lcs --params=64,64 --sim --nodes=4 \
  --cores=2 --report=build/profile-smoke/sim.report.json \
  --profile-out=build/profile-smoke/sim.prof.json > /dev/null
build/tools/dpgen-analyze --validate=build/profile-smoke/sim.prof.json
# dpgen-top's live profiler columns ride the same counters.
build/tools/dpgen-top --problem=lcs --params=96,96 --ranks=2 --threads=2 \
  --profile --check | grep -q "profile samples="
echo "continuous-profiling smoke passed"

echo "==== msgtrace smoke (causal message tracing + conservation)"
# Two bundled problems with message tracing on: each dpgen.msgtrace.v1
# document must validate through the schema registry (no --schema: resolved
# from the document's own id) and pass the conservation re-check (every
# assigned sequence number delivered, per-link queueing buckets summing to
# the end-to-end latency — exit 1 otherwise).  The lcs leg also renders the
# per-message waterfall.
rm -rf build/msgtrace-smoke && mkdir -p build/msgtrace-smoke
for p in "lcs:96,96" "edit_distance:96,96"; do
  name="${p%%:*}"; params="${p#*:}"
  build/tools/dpgen-analyze --problem="$name" --params="$params" \
    --ranks=2 --threads=2 --report="build/msgtrace-smoke/${name}.report.json" \
    --msgtrace-out="build/msgtrace-smoke/${name}.mt.json" > /dev/null
  build/tools/dpgen-analyze --validate="build/msgtrace-smoke/${name}.mt.json"
  build/tools/dpgen-analyze --validate="build/msgtrace-smoke/${name}.report.json"
done
build/tools/dpgen-analyze --msgtrace=build/msgtrace-smoke/lcs.mt.json \
  --waterfall=build/msgtrace-smoke/lcs.waterfall.html
test -s build/msgtrace-smoke/lcs.waterfall.html
build/tools/dpgen-analyze --msgtrace=build/msgtrace-smoke/edit_distance.mt.json
# The simulator's DES emits the same document (lossless delivery, so
# conservation must account by construction).
build/tools/dpgen-analyze --problem=lcs --params=96,96 --sim --nodes=2 \
  --cores=2 --report=build/msgtrace-smoke/sim.report.json \
  --msgtrace-out=build/msgtrace-smoke/sim.mt.json > /dev/null
build/tools/dpgen-analyze --validate=build/msgtrace-smoke/sim.mt.json
build/tools/dpgen-analyze --msgtrace=build/msgtrace-smoke/sim.mt.json
# Chaos leg: a seeded drop: plan loses messages on purpose; the fault
# plan's counters flow into the document as expected drops, so the
# conservation checker must still exit green ("accounted", not "lost").
build/tools/dpgen-analyze --problem=lcs --params=96,96 --ranks=2 \
  --threads=2 --faults='drop:1>0@3' \
  --report=build/msgtrace-smoke/drop.report.json \
  --msgtrace-out=build/msgtrace-smoke/drop.mt.json > /dev/null
build/tools/dpgen-analyze --msgtrace=build/msgtrace-smoke/drop.mt.json
python3 - build/msgtrace-smoke/drop.mt.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
if doc["expected_drops"] < 1:
    sys.exit("chaos msgtrace leg: the drop: plan fired no drops")
if not doc["conservation"]["accounted"]:
    sys.exit("chaos msgtrace leg: conservation did not account")
EOF
echo "msgtrace smoke passed"

echo "==== chaos smoke (fault injection + checkpoint restart)"
# A seeded mid-run rank kill through dpgen-top: the run must recover via a
# checkpoint restart (exactly one failure/restart pair in the summary), the
# flushed checkpoint must validate against tools/checkpoint_schema.json,
# and the event log — now containing rank_failed + restart events — must
# still validate against the events schema.
rm -rf build/chaos-smoke && mkdir -p build/chaos-smoke
build/tools/dpgen-top --problem=lcs --params=96,96 --ranks=2 --threads=2 \
  --interval=0.005 --faults=kill:1@12 \
  --checkpoint=build/chaos-smoke/kill.ckpt.json \
  --events=build/chaos-smoke/kill.jsonl --check \
  | tee build/chaos-smoke/kill.summary
awk '{ for (i = 1; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] } }
     END { exit !(v["rank_failures"] == 1 && v["restarts"] == 1) }' \
  build/chaos-smoke/kill.summary
build/tools/dpgen-analyze --validate=build/chaos-smoke/kill.ckpt.json \
  --schema=tools/checkpoint_schema.json
build/tools/dpgen-analyze --events=build/chaos-smoke/kill.jsonl \
  --schema=tools/events_schema.json > /dev/null
# A slowed rank is chaos the run must absorb WITHOUT recovery machinery:
# no failures, no restarts, no straggler mistaken for a stall.
build/tools/dpgen-top --problem=lcs --params=96,96 --ranks=2 --threads=2 \
  --interval=0.005 --faults=slow:1@3 \
  --events=build/chaos-smoke/slow.jsonl --check \
  | tee build/chaos-smoke/slow.summary
awk '{ for (i = 1; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] } }
     END { exit !(v["rank_failures"] == 0 && v["restarts"] == 0 \
                  && v["heartbeats"] >= 1) }' \
  build/chaos-smoke/slow.summary
build/tools/dpgen-analyze --events=build/chaos-smoke/slow.jsonl \
  --schema=tools/events_schema.json > /dev/null
echo "chaos smoke passed"

echo "==== vectorization smoke (codegen pass pipeline)"
# The canonicalize pass exists to make the innermost loop vectorizable at
# the baseline ISA: the interior segment's guarded loads fold to
# unconditional ones, and GCC must report the loop on the emitted
# "dpgen:vec-inner" marker line vectorized at plain -O3 (no -march=native —
# wide ISAs mask-vectorize even the unsplit loop, which would hide a
# canonicalization regression).  Clang has no -fopt-info; probe the flag
# and skip (with a notice) on non-GCC toolchains.
CXX_BIN="${CXX:-c++}"
rm -rf build/vec-smoke && mkdir -p build/vec-smoke
cat > build/vec-smoke/trellis.spec <<'EOF'
problem trellis
params T S
vars t s
array V double

constraints {
  t >= 0
  t <= T
  s >= 0
  s <= S
}

dep up_left = (1, -1)
dep up = (1, 0)
dep up_right = (1, 1)

loadbalance t
tilewidths 1 4096

center {{{
double dp_v = 0.25 + (double)(int)((3*t + 5*s) & 7) * 0.125;
if (is_valid_up_left) dp_v += 0.3125 * V[loc_up_left];
if (is_valid_up) dp_v += 0.375 * V[loc_up];
if (is_valid_up_right) dp_v += 0.28125 * V[loc_up_right];
V[loc] = dp_v;
}}}
EOF
build/examples/generate_program --passes=canonicalize \
  build/vec-smoke/trellis.spec build/vec-smoke/trellis.cpp > /dev/null
if echo 'int main(){}' | "$CXX_BIN" -x c++ - -fopt-info-vec \
    -o build/vec-smoke/probe 2> /dev/null; then
  vec_line="$(grep -n 'dpgen:vec-inner' build/vec-smoke/trellis.cpp \
    | head -1 | cut -d: -f1)"
  [[ -n "$vec_line" ]]
  "$CXX_BIN" -std=c++20 -O3 -fopenmp -DDPGEN_RUNTIME_USE_OPENMP -Isrc \
    -fopt-info-vec -c build/vec-smoke/trellis.cpp \
    -o build/vec-smoke/trellis.o 2> build/vec-smoke/vec.log
  grep -q ":${vec_line}:.*loop vectorized" build/vec-smoke/vec.log || {
    echo "ERROR: canonicalized interior loop (line ${vec_line}) did not" \
         "vectorize at -O3; -fopt-info-vec output:" >&2
    cat build/vec-smoke/vec.log >&2
    exit 1
  }
  echo "vectorization smoke passed (interior loop at line ${vec_line})"
else
  echo "vectorization smoke skipped (compiler lacks -fopt-info-vec)"
fi

if [[ "${1:-}" != "--quick" ]]; then
  for b in build/bench/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    echo "==== $b"
    "$b"
  done

  echo "==== ThreadSanitizer pass (minimpi / runtime / obs / engine)"
  # OpenMP is disabled in this flavour: libgomp is not TSan-instrumented,
  # so its pool-thread barriers are invisible and every cross-region
  # access reports as a false race.  Workers fall back to std::thread,
  # which exercises the same driver loop fully instrumented.
  cmake -B build-tsan -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_DISABLE_FIND_PACKAGE_OpenMP=ON \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  # test_codegen_passes rides along: its end-to-end cases compile the
  # generated programs with the flavour's flags (std::thread workers,
  # TSan-instrumented) and run them 2-rank/2-thread, so the generated
  # driver loop itself gets a race check.
  # test_faults rides along: the chaos suite replays seeded kill/drop/
  # dup/delay/slow plans with every rank fully instrumented, so the
  # restart path (transport poisoning, checkpoint seeding, re-balance)
  # gets a race check too.  The 100-iteration soak target is excluded —
  # the 12-iteration in-suite soak already covers it at TSan speed.
  # test_profile rides along: the sampler churn test races the SIGPROF
  # handler against frame pushes, tile counter windows and stop()
  # aggregation with every thread instrumented.
  # test_msgtrace rides along: its end-to-end cases stamp message
  # envelopes from every worker thread over the sharded tile table, so
  # the lifecycle stamps and per-thread record rings get a race check.
  cmake --build build-tsan --target test_minimpi test_runtime test_obs \
    test_engine test_hotpath test_monitor test_codegen_passes test_faults \
    test_profile test_msgtrace
  ctest --test-dir build-tsan --output-on-failure \
    -R 'MiniMpi|Runtime|Obs|Engine|Tracer|Metrics|Export|Hotpath|Monitor|CodegenPasses|Fault|Chaos|Checkpoint|TableState|Profile|SchemaRegistry|MsgTrace' \
    -E 'ChaosSoak.Replay100'

  echo "==== DPGEN_TRACE=0 pass (tracing compiled out)"
  cmake -B build-notrace -G Ninja -DDPGEN_TRACE=OFF
  cmake --build build-notrace
  ctest --test-dir build-notrace --output-on-failure

  echo "==== Release bench smoke (hot-path throughput)"
  cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release --target bench_hotpath dpgen-bench
  mkdir -p bench-archive
  stamp="$(date +%Y%m%d-%H%M%S)"
  build-release/bench/bench_hotpath \
    --json "bench-archive/hotpath-${stamp}.json" \
    --benchmark_filter=BM_TableDeliverPop
  echo "archived bench-archive/hotpath-${stamp}.json"

  echo "==== continuous-benchmarking gate (dpgen-bench)"
  # A quick, ms-scale subset: run with repeated trials, validate the
  # emitted document, archive it (for --trend), and gate against the
  # per-machine auto-baseline — the first run on a machine establishes
  # the baseline and exits green; later runs fail on a real regression.
  # hotpath/grid_w2 vs hotpath/grid_w2_mon also tracks the live-monitor
  # overhead budget (< 3% of edge throughput) across commits.
  # codegen/ additionally carries the pass-pipeline speedup contract: the
  # full-pipeline variant must hold >= 1.3x the pass-free center-loop
  # throughput on at least two families (checked below from the same run).
  gate_filter="fm,initial_tiles,loadbalance/balancer,analysis,suite/lcs2"
  gate_filter="$gate_filter,hotpath/grid_w2,hotpath/table_deliver_pop"
  gate_filter="$gate_filter,codegen/,faults/"
  build-release/tools/dpgen-bench --filter="$gate_filter" --trials=5 \
    --json="bench-archive/run-latest.json" --archive --gate
  build-release/tools/dpgen-bench \
    --validate=bench-archive/run-latest.json --schema=tools/bench_schema.json
  # Pass-pipeline speedup gate: full vs none center-loop throughput from
  # the run just archived.  Unlike the regression gate this is an absolute
  # contract (docs/codegen.md), not a comparison against a baseline.
  python3 - bench-archive/run-latest.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rate = {}
for b in doc["benches"]:
    if b["name"].startswith("codegen/"):
        fam, variant = b["name"].split("/", 1)[1].rsplit("_", 1)
        rate.setdefault(fam, {})[variant] = b["metrics"]["cells_per_sec"]
ratios = {f: r["full"] / r["none"]
          for f, r in rate.items() if r.get("none") and r.get("full")}
ok = sorted(f for f, x in ratios.items() if x >= 1.3)
print("codegen pass-pipeline speedup:",
      ", ".join(f"{f} {ratios[f]:.2f}x" for f in sorted(ratios)) or "none")
if len(ok) < 2:
    sys.exit("codegen perf gate: >= 1.3x on %d/%d families (need 2)"
             % (len(ok), len(ratios)))
EOF
  # Continuous-profiling overhead gate (docs/observability.md): the
  # sampling profiler + adaptive-stride counter windows must cost < 3%
  # of edge throughput on the scheduling-bound workload, from the same
  # archived run (grid_w2 vs grid_w2_prof, both pulled in by the
  # hotpath/grid_w2 prefix above).  An absolute contract, not a
  # baseline comparison.
  python3 - bench-archive/run-latest.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rate = {b["name"]: b["metrics"]["edges_per_s"] for b in doc["benches"]
        if b["name"].startswith("hotpath/grid_w2")}
plain, prof = rate.get("hotpath/grid_w2"), rate.get("hotpath/grid_w2_prof")
if not plain or not prof:
    sys.exit("profile overhead gate: missing hotpath/grid_w2 or "
             "hotpath/grid_w2_prof in the archived run")
overhead = 100.0 * (1.0 - prof / plain)
print("continuous-profiling overhead: %.2f%% (budget < 3%%)" % overhead)
if prof < 0.97 * plain:
    sys.exit("profile overhead gate: profiling costs %.2f%% of edge "
             "throughput (budget 3%%)" % overhead)
EOF
  # Message-tracing overhead gate (docs/observability.md): stamping and
  # recording every message lifecycle must cost < 3% of edge throughput.
  # The baseline is grid_w2_r2, NOT grid_w2 — the single-rank workload
  # sends no messages, so it would measure nothing.  Both entries come in
  # through the hotpath/grid_w2 prefix above.
  python3 - bench-archive/run-latest.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rate = {b["name"]: b["metrics"]["edges_per_s"] for b in doc["benches"]
        if b["name"].startswith("hotpath/grid_w2")}
plain, mt = rate.get("hotpath/grid_w2_r2"), rate.get("hotpath/grid_w2_msgtrace")
if not plain or not mt:
    sys.exit("msgtrace overhead gate: missing hotpath/grid_w2_r2 or "
             "hotpath/grid_w2_msgtrace in the archived run")
overhead = 100.0 * (1.0 - mt / plain)
print("message-tracing overhead: %.2f%% (budget < 3%%)" % overhead)
if mt < 0.97 * plain:
    sys.exit("msgtrace overhead gate: tracing costs %.2f%% of edge "
             "throughput (budget 3%%)" % overhead)
EOF
  # Checkpoint clean-path overhead gate (docs/fault-tolerance.md): logging
  # every tile completion must cost < 3% of tile throughput on the
  # production-shaped workload, from the same archived run.  An absolute
  # contract like the codegen gate, not a baseline comparison.
  python3 - bench-archive/run-latest.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rate = {b["name"]: b["metrics"]["cells_per_sec"] for b in doc["benches"]
        if b["name"].startswith("faults/")}
clean, ckpt = rate.get("faults/clean"), rate.get("faults/checkpointed")
if not clean or not ckpt:
    sys.exit("faults overhead gate: missing faults/clean or "
             "faults/checkpointed in the archived run")
overhead = 100.0 * (1.0 - ckpt / clean)
print("checkpoint clean-path overhead: %.2f%% (budget < 3%%)" % overhead)
if ckpt < 0.97 * clean:
    sys.exit("faults overhead gate: checkpointing costs %.2f%% of clean "
             "throughput (budget 3%%)" % overhead)
EOF
  # The checked-in smoke baseline gates too (skips with a warning on a
  # different machine fingerprint).
  build-release/tools/dpgen-bench --filter="$gate_filter" --trials=5 \
    --gate --baseline=bench-archive/smoke-baseline.json
  # Self-test: an injected 4x slowdown MUST fire the gate; a gate that
  # cannot fail protects nothing.
  if build-release/tools/dpgen-bench --filter="$gate_filter" --trials=3 \
      --gate --self-test-slowdown=4 > /dev/null 2>&1; then
    echo "ERROR: perf gate failed to fire on an injected 4x slowdown" >&2
    exit 1
  fi
  echo "perf gate self-test: injected slowdown correctly rejected"
  build-release/tools/dpgen-bench --trend=bench-archive/trend.html
  echo "trend page written to bench-archive/trend.html"
fi
echo "all checks passed"
