#!/usr/bin/env bash
# Full local verification: configure, build, run the test suite and the
# figure-reproduction benches.  Usage: scripts/check.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

if [[ "${1:-}" != "--quick" ]]; then
  for b in build/bench/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    echo "==== $b"
    "$b"
  done
fi
echo "all checks passed"
