#!/usr/bin/env bash
# Full local verification: configure, build, run the test suite and the
# figure-reproduction benches, then three extra build flavours —
#   * ThreadSanitizer over the concurrency-heavy suites (the runtime,
#     comm layer and tracer are lock-free on their hot paths),
#   * a -DDPGEN_TRACE=0 build proving the tracing macro path compiles
#     and the suite still passes with every span compiled out,
#   * a Release (-O2 -DNDEBUG) build-and-bench smoke: bench_hotpath with
#     --json, archived under bench-archive/ — the numbers BENCH_hotpath.json
#     tracks across commits,
#   * the continuous-benchmarking gate: dpgen-bench runs a quick subset,
#     validates the emitted dpgen.bench.v1 document, archives the run,
#     gates it against the per-machine auto-baseline (established on the
#     first run), and self-tests that an injected 4x slowdown fires.
# Usage: scripts/check.sh [--quick]   (--quick skips benches and flavours)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "==== analyzer smoke (--report + dpgen-analyze + schema validation)"
# Two bundled problems through the full report pipeline: engine run with
# --report/--trace-out, the exported trace re-ingested by dpgen-analyze,
# and every produced report validated against tools/report_schema.json.
rm -rf build/analyze-smoke && mkdir -p build/analyze-smoke
for p in "bandit2:12" "lcs:64,64"; do
  name="${p%%:*}"; params="${p#*:}"
  build/tools/dpgen-analyze --problem="$name" --params="$params" \
    --ranks=2 --threads=2 \
    --report="build/analyze-smoke/${name}.json" \
    --trace-out="build/analyze-smoke/${name}.trace.json" > /dev/null
  build/tools/dpgen-analyze --trace="build/analyze-smoke/${name}.trace.json" \
    --problem="$name" --params="$params" \
    --report="build/analyze-smoke/${name}.retrace.json" > /dev/null
  build/tools/dpgen-analyze \
    --validate="build/analyze-smoke/${name}.json" \
    --schema=tools/report_schema.json
  build/tools/dpgen-analyze \
    --validate="build/analyze-smoke/${name}.retrace.json" \
    --schema=tools/report_schema.json
done
build/tools/dpgen-analyze --problem=lcs --params=64,64 --sim \
  --nodes=4 --cores=2 --report=build/analyze-smoke/lcs.sim.json > /dev/null
build/tools/dpgen-analyze --validate=build/analyze-smoke/lcs.sim.json \
  --schema=tools/report_schema.json

echo "==== live-monitor smoke (dpgen-top + events schema)"
# Balanced engine run through the run monitor: the event log must validate
# against tools/events_schema.json, contain at least one heartbeat, and —
# since the workload is balanced — flag no stragglers.
rm -rf build/monitor-smoke && mkdir -p build/monitor-smoke
build/tools/dpgen-top --problem=lcs --params=96,96 --ranks=2 --threads=2 \
  --interval=0.005 --events=build/monitor-smoke/lcs.jsonl --check \
  | tee build/monitor-smoke/lcs.summary
awk '{ for (i = 1; i <= NF; i++) { split($i, kv, "="); v[kv[1]] = kv[2] } }
     END { exit !(v["heartbeats"] >= 1 && v["stragglers"] == 0) }' \
  build/monitor-smoke/lcs.summary
build/tools/dpgen-analyze --events=build/monitor-smoke/lcs.jsonl \
  --schema=tools/events_schema.json > /dev/null
# Skewed simulated fleet: the online detector must name the slowed node.
build/tools/dpgen-top --problem=lcs --params=96,96 --sim --nodes=2 \
  --cores=2 --slow-node=1:4 --events=build/monitor-smoke/skew.jsonl \
  --check 2> build/monitor-smoke/skew.err
grep -q "straggler: node 1" build/monitor-smoke/skew.err
build/tools/dpgen-analyze --events=build/monitor-smoke/skew.jsonl \
  --schema=tools/events_schema.json > /dev/null
echo "live-monitor smoke passed"

if [[ "${1:-}" != "--quick" ]]; then
  for b in build/bench/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    echo "==== $b"
    "$b"
  done

  echo "==== ThreadSanitizer pass (minimpi / runtime / obs / engine)"
  # OpenMP is disabled in this flavour: libgomp is not TSan-instrumented,
  # so its pool-thread barriers are invisible and every cross-region
  # access reports as a false race.  Workers fall back to std::thread,
  # which exercises the same driver loop fully instrumented.
  cmake -B build-tsan -G Ninja \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_DISABLE_FIND_PACKAGE_OpenMP=ON \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  cmake --build build-tsan --target test_minimpi test_runtime test_obs \
    test_engine test_hotpath test_monitor
  ctest --test-dir build-tsan --output-on-failure \
    -R 'MiniMpi|Runtime|Obs|Engine|Tracer|Metrics|Export|Hotpath|Monitor'

  echo "==== DPGEN_TRACE=0 pass (tracing compiled out)"
  cmake -B build-notrace -G Ninja -DDPGEN_TRACE=OFF
  cmake --build build-notrace
  ctest --test-dir build-notrace --output-on-failure

  echo "==== Release bench smoke (hot-path throughput)"
  cmake -B build-release -G Ninja -DCMAKE_BUILD_TYPE=Release
  cmake --build build-release --target bench_hotpath dpgen-bench
  mkdir -p bench-archive
  stamp="$(date +%Y%m%d-%H%M%S)"
  build-release/bench/bench_hotpath \
    --json "bench-archive/hotpath-${stamp}.json" \
    --benchmark_filter=BM_TableDeliverPop
  echo "archived bench-archive/hotpath-${stamp}.json"

  echo "==== continuous-benchmarking gate (dpgen-bench)"
  # A quick, ms-scale subset: run with repeated trials, validate the
  # emitted document, archive it (for --trend), and gate against the
  # per-machine auto-baseline — the first run on a machine establishes
  # the baseline and exits green; later runs fail on a real regression.
  # hotpath/grid_w2 vs hotpath/grid_w2_mon also tracks the live-monitor
  # overhead budget (< 3% of edge throughput) across commits.
  gate_filter="fm,initial_tiles,loadbalance/balancer,analysis,suite/lcs2"
  gate_filter="$gate_filter,hotpath/grid_w2,hotpath/table_deliver_pop"
  build-release/tools/dpgen-bench --filter="$gate_filter" --trials=5 \
    --json="bench-archive/run-latest.json" --archive --gate
  build-release/tools/dpgen-bench \
    --validate=bench-archive/run-latest.json --schema=tools/bench_schema.json
  # The checked-in smoke baseline gates too (skips with a warning on a
  # different machine fingerprint).
  build-release/tools/dpgen-bench --filter="$gate_filter" --trials=5 \
    --gate --baseline=bench-archive/smoke-baseline.json
  # Self-test: an injected 4x slowdown MUST fire the gate; a gate that
  # cannot fail protects nothing.
  if build-release/tools/dpgen-bench --filter="$gate_filter" --trials=3 \
      --gate --self-test-slowdown=4 > /dev/null 2>&1; then
    echo "ERROR: perf gate failed to fire on an injected 4x slowdown" >&2
    exit 1
  fi
  echo "perf gate self-test: injected slowdown correctly rejected"
  build-release/tools/dpgen-bench --trend=bench-archive/trend.html
  echo "trend page written to bench-archive/trend.html"
fi
echo "all checks passed"
